#include "runtime/planner.hpp"

#include <bit>
#include <stdexcept>
#include <string>
#include <utility>

#include "baselines/bcast_baselines.hpp"
#include "baselines/kitem_baselines.hpp"
#include "bcast/all_to_all.hpp"
#include "bcast/combining.hpp"
#include "bcast/hierarchical.hpp"
#include "bcast/kitem.hpp"
#include "bcast/kitem_buffered.hpp"
#include "bcast/reduction.hpp"
#include "bcast/single_item.hpp"
#include "obs/trace_recorder.hpp"
#include "runtime/implicit_plan.hpp"
#include "sched/metrics.hpp"
#include "sum/summation_tree.hpp"

namespace logpc::runtime {

namespace {

/// The per-problem build-latency histogram — registry lookup per call is
/// fine here: this runs once per cache miss, next to a schedule build.
obs::Histogram& build_latency_hist(Problem problem) {
  return obs::MetricsRegistry::global().histogram(
      "logpc_planner_build_latency_ns", obs::default_latency_buckets_ns(),
      "Wall-clock nanoseconds spent building one plan, by problem",
      "problem=\"" + std::string(problem_name(problem)) + "\"");
}

/// Scatter: item d leaves the root in destination order, serialized by g
/// (any order is optimal — every message crosses the root's send port).
Schedule build_scatter(const Params& params, ProcId root) {
  Schedule s(params, params.P);
  for (ProcId d = 0; d < params.P; ++d) s.add_initial(d, root, 0);
  Time start = 0;
  for (ProcId d = 0; d < params.P; ++d) {
    if (d == root) continue;
    s.add_send(start, root, d, d);
    start += params.g;
  }
  s.sort();
  return s;
}

/// Gather: the scatter pattern reversed — senders staggered so arrivals at
/// the root land exactly g apart.
Schedule build_gather(const Params& params, ProcId root) {
  Schedule s(params, params.P);
  for (ProcId p = 0; p < params.P; ++p) s.add_initial(p, p, 0);
  Time start = 0;
  for (ProcId p = 0; p < params.P; ++p) {
    if (p == root) continue;
    s.add_send(start, p, root, p);
    start += params.g;
  }
  s.sort();
  return s;
}

/// Completion of the serialized port schedules above: P-2 gaps after the
/// first send, then one full transfer.
Time port_schedule_completion(const Params& params) {
  if (params.P == 1) return 0;
  return (params.P - 2) * params.g + params.transfer_time();
}

/// The method label an implicit-only build stamps — identical strings to
/// the materialized switch, so representation never shows in diagnostics.
std::string implicit_method(Problem problem) {
  switch (problem) {
    case Problem::kBroadcast:
      return "optimal tree (Thm 2.1)";
    case Problem::kReduce:
      return "reversed optimal tree (Sec 4.2)";
    case Problem::kBinomialBroadcast:
      return "binomial tree";
    case Problem::kBinaryBroadcast:
      return "binary tree";
    case Problem::kChainBroadcast:
      return "linear chain";
    default:
      return {};
  }
}

}  // namespace

Planner::Planner(Options options)
    : options_(validated(options)),
      cache_(options_.cache_capacity, options_.cache_shards) {
  register_metrics();
}

Planner::Options Planner::validated(const Options& options) {
  if (options.cache_capacity < 1) {
    throw std::invalid_argument(
        "Planner: cache_capacity must be >= 1 (an uncacheable planner "
        "would rebuild every plan; use build_uncached directly instead)");
  }
  if (options.cache_shards < 1) {
    throw std::invalid_argument("Planner: cache_shards must be >= 1");
  }
  if (options.materialize_threshold < 1) {
    throw std::invalid_argument(
        "Planner: materialize_threshold must be >= 1 (problems without an "
        "implicit form materialize regardless, so 0 is not 'never')");
  }
  return options;
}

void Planner::register_metrics() {
  static std::atomic<int> next_id{0};
  telemetry_id_ = next_id.fetch_add(1, std::memory_order_relaxed);
  auto& reg = obs::MetricsRegistry::global();
  dedup_waits_ =
      &reg.counter("logpc_planner_dedup_waits_total",
                   "plan() calls that waited on another thread's in-flight "
                   "build instead of building or hitting the cache");

  // Cache counters republished as callback gauges: evaluated only at
  // export time, so the cache's hot path carries no extra telemetry cost.
  const std::string labels =
      "planner=\"" + std::to_string(telemetry_id_) + "\"";
  const auto gauge = [&](const std::string& name, const std::string& help,
                         std::function<double()> fn,
                         const std::string& metric_labels) {
    reg.register_callback(name, help, std::move(fn), metric_labels);
    callback_metrics_.emplace_back(name, metric_labels);
  };
  gauge("logpc_plan_cache_hits", "PlanCache::get hits",
        [this] { return static_cast<double>(cache_.stats().hits); }, labels);
  gauge("logpc_plan_cache_misses", "PlanCache::get misses",
        [this] { return static_cast<double>(cache_.stats().misses); }, labels);
  gauge("logpc_plan_cache_inserts", "PlanCache::put insertions",
        [this] { return static_cast<double>(cache_.stats().inserts); }, labels);
  gauge("logpc_plan_cache_evictions", "LRU evictions",
        [this] { return static_cast<double>(cache_.stats().evictions); },
        labels);
  gauge("logpc_plan_cache_entries", "cached plans",
        [this] { return static_cast<double>(cache_.size()); }, labels);
  gauge("logpc_plan_cache_hit_ratio", "hits / lookups since construction",
        [this] { return cache_.stats().hit_ratio(); }, labels);
  gauge("logpc_plan_cache_capacity", "configured entry budget",
        [this] { return static_cast<double>(cache_.capacity()); }, labels);
  gauge("logpc_planner_builds", "schedule builds by this planner",
        [this] { return static_cast<double>(builds()); }, labels);
  gauge("logpc_planner_requests",
        "plan() calls resolved by this planner (cache hits + misses; each "
        "logical lookup is counted exactly once)",
        [this] {
          const CacheStats s = cache_.stats();
          return static_cast<double>(s.hits + s.misses);
        },
        labels);
  for (std::size_t s = 0; s < cache_.num_shards(); ++s) {
    gauge("logpc_plan_cache_shard_entries", "cached plans per shard",
          [this, s] { return static_cast<double>(cache_.stats().shard_entries[s]); },
          labels + ",shard=\"" + std::to_string(s) + "\"");
  }
}

Planner::~Planner() {
  // Callbacks capture `this`; drop them before any member is destroyed.
  // unregister() synchronizes on the registry mutex, so no snapshot can be
  // mid-callback once it returns.
  auto& reg = obs::MetricsRegistry::global();
  for (const auto& [name, labels] : callback_metrics_) {
    reg.unregister(name, labels);
  }
  // No readers can remain once the destructor runs; free the memo list.
  const TunedMemo* m = tuned_memo_.load(std::memory_order_acquire);
  while (m != nullptr) {
    const TunedMemo* next = m->next;
    delete m;
    m = next;
  }
}

PlanPtr Planner::plan(Problem problem, const Params& params, std::int64_t k,
                      ProcId root) {
  return plan(PlanKey::make(problem, params, k, root));
}

void Planner::set_decision_table(
    std::shared_ptr<const tune::DecisionTable> table) {
  const std::scoped_lock lock(table_mu_);
  if (table_current_) table_retired_.push_back(std::move(table_current_));
  table_current_ = std::move(table);
  table_view_.store(table_current_.get(), std::memory_order_release);
}

std::shared_ptr<const tune::DecisionTable> Planner::decision_table() const {
  const std::scoped_lock lock(table_mu_);
  return table_current_;
}

PlanKey Planner::tuned_key(tune::Collective collective, const Params& params,
                           std::size_t bytes, ProcId root) const {
  if (const tune::DecisionTable* table =
          table_view_.load(std::memory_order_acquire)) {
    if (const tune::Decision* d = table->find(collective, params.P, bytes)) {
      switch (d->problem) {
        case Problem::kKItemBroadcast:
          // The segmented pipeline: the kitem key's root normalizes to 0;
          // the executable lowering relabels for other roots
          // (Communicator::compile's convention).
          return PlanKey::segmented_broadcast(params, d->segments);
        case Problem::kHierarchicalBroadcast:
          return PlanKey::make(Problem::kHierarchicalBroadcast, params, 1,
                               root, 0, d->clusters, d->cross_L, d->cross_o,
                               d->cross_g);
        default:
          return PlanKey::make(d->problem, params, 1, root);
      }
    }
  }
  // Untuned machine (or no table): the paper's optimal tree.
  return PlanKey::broadcast(params, root);
}

PlanPtr Planner::plan_tuned(tune::Collective collective, const Params& params,
                            std::size_t bytes, ProcId root) {
  // Warm path: the memo walk.  The table pointer is part of the match, so
  // installing or clearing a table invalidates stale bindings implicitly.
  const tune::DecisionTable* table =
      table_view_.load(std::memory_order_acquire);
  const int size_class = tune::size_class_of(bytes);
  int depth = 0;
  for (const TunedMemo* m = tuned_memo_.load(std::memory_order_acquire);
       m != nullptr; m = m->next, ++depth) {
    if (m->table == table && m->size_class == size_class &&
        m->root == root && m->collective == collective &&
        m->params == params) {
      return m->plan;
    }
  }
  PlanPtr resolved = plan(tuned_key(collective, params, bytes, root));
  if (depth < kTunedMemoCap) {
    auto* node = new TunedMemo{table,      collective, params, root,
                               size_class, resolved,   nullptr};
    const TunedMemo* head = tuned_memo_.load(std::memory_order_relaxed);
    do {
      node->next = head;
    } while (!tuned_memo_.compare_exchange_weak(head, node,
                                                std::memory_order_release,
                                                std::memory_order_relaxed));
  }
  return resolved;
}

PlanPtr Planner::plan(const PlanKey& key) {
  // Warm path: identical to the uninstrumented cache probe.  Request and
  // hit/miss telemetry rides on the cache's own shard counters, which the
  // registry reads only at export time (see register_metrics()).
  if (PlanPtr hit = cache_.get(key)) return hit;

  std::promise<PlanPtr> promise;
  std::shared_future<PlanPtr> result;
  bool builder = false;
  {
    const std::scoped_lock lock(inflight_mu_);
    // Re-probe under the lock: a racing builder may have published between
    // our miss and here (it erases its in-flight entry after caching).
    // Uncounted: the first probe already logged this lookup's miss.
    if (PlanPtr hit = cache_.get(key, /*count_stats=*/false)) return hit;
    if (const auto it = inflight_.find(key); it != inflight_.end()) {
      result = it->second;
    } else {
      result = promise.get_future().share();
      inflight_.emplace(key, result);
      builder = true;
    }
  }
  if (!builder) {
    if (obs::enabled()) dedup_waits_->inc();
    return result.get();  // rethrows the builder's exception
  }

  try {
    builds_.fetch_add(1, std::memory_order_relaxed);
    // Past the threshold, implicit-capable plans skip the O(P) IR build
    // and are cached as O(log P) generator entries.
    const bool materialize = !ImplicitPlan::supports(key) ||
                             key.params.P <= options_.materialize_threshold;
    PlanPtr plan;
    {
      obs::Span span("planner.build", "planner");
      if (span.active()) span.set_arg(key.to_string());
      const obs::ScopedTimer timer(build_latency_hist(key.problem));
      plan = std::make_shared<const Plan>(build_uncached(key, materialize));
    }
    cache_.put(key, plan);
    {
      // Publish-then-unregister: a thread missing the in-flight entry from
      // here on finds the plan in the cache.
      const std::scoped_lock lock(inflight_mu_);
      inflight_.erase(key);
    }
    promise.set_value(plan);
    return plan;
  } catch (...) {
    {
      const std::scoped_lock lock(inflight_mu_);
      inflight_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

Plan Planner::build_uncached(const PlanKey& key, bool materialize) {
  if (key.mask != 0) {
    // Degraded membership (the recovery layer re-planning around dead
    // ranks): build on the compacted machine of the survivors — the
    // paper's constructions are universal in P, so the plan over the
    // live_count() processors is itself optimal — then stamp the masked
    // key back on.  Plan processor i is physical rank live_ranks()[i]; the
    // caller (api::Communicator::run_broadcast_ft) owns that mapping.
    // Like `schedule`, any attached `implicit` describes the *compact*
    // machine.
    Params compact = key.params;
    compact.P = key.live_count();
    const std::uint64_t below_root = key.mask & ((1ull << key.root) - 1);
    const auto virtual_root = static_cast<ProcId>(std::popcount(below_root));
    Plan plan = build_uncached(
        PlanKey::make(key.problem, compact, key.k, virtual_root), materialize);
    plan.key = key;
    return plan;
  }
  const Params& m = key.params;
  const int k = static_cast<int>(key.k);
  Plan plan;
  plan.key = key;
  if (ImplicitPlan::supports(key)) {
    plan.implicit =
        std::make_shared<const ImplicitPlan>(ImplicitPlan::build(key));
  }
  if (!materialize) {
    if (!plan.implicit) {
      throw std::invalid_argument(
          "Planner::build_uncached: no implicit form for " + key.to_string());
    }
    plan.materialized = false;
    plan.completion = plan.implicit->completion();
    plan.method = implicit_method(key.problem);
    return plan;
  }
  switch (key.problem) {
    case Problem::kBroadcast:
      plan.schedule = bcast::optimal_single_item(m, key.root);
      plan.completion = bcast::B_of_P(m, m.P);
      plan.method = "optimal tree (Thm 2.1)";
      break;
    case Problem::kKItemBroadcast: {
      auto r = bcast::kitem_broadcast(m.P, m.L, k);
      plan.schedule = std::move(r.schedule);
      plan.completion = r.completion;
      plan.slack = r.slack;
      plan.method = r.method == bcast::KItemMethod::kContinuousBlockCyclic
                        ? "block-cyclic"
                        : "greedy";
      break;
    }
    case Problem::kBufferedKItemBroadcast: {
      auto r = bcast::kitem_buffered(m.P, m.L, k);
      plan.schedule = std::move(r.schedule);
      plan.completion = r.completion;
      plan.max_buffer_depth = r.max_buffer_depth;
      plan.method = "buffered (Thm 3.8)";
      break;
    }
    case Problem::kScatter:
      plan.schedule = build_scatter(m, key.root);
      plan.completion = port_schedule_completion(m);
      plan.method = "serialized send port";
      break;
    case Problem::kGather:
      plan.schedule = build_gather(m, key.root);
      plan.completion = port_schedule_completion(m);
      plan.method = "serialized receive port";
      break;
    case Problem::kReduce: {
      auto r = bcast::optimal_reduction(m, key.root);
      plan.schedule = std::move(r.schedule);
      plan.completion = r.completion;
      plan.method = "reversed optimal tree (Sec 4.2)";
      break;
    }
    case Problem::kSummation: {
      const Time t =
          sum::min_time_for_operands(m, static_cast<Count>(key.k));
      const auto r = sum::optimal_summation(m, t);
      plan.schedule = r.timing_view();
      plan.completion = r.t;
      plan.total_operands = r.total_operands;
      plan.method = "reversed (L+1) tree (Sec 5)";
      break;
    }
    case Problem::kAllToAll:
      plan.schedule = bcast::all_to_all_k(m, k);
      plan.completion = bcast::all_to_all_lower_bound(m, k);
      plan.method = "rotation (Sec 4.1)";
      break;
    case Problem::kAllToAllPersonalized:
      plan.schedule = bcast::all_to_all_personalized(m);
      plan.completion = bcast::all_to_all_lower_bound(m);
      plan.method = "rotation, personalized";
      break;
    case Problem::kAllReduce: {
      const Time T = bcast::combining_time_for(m.P, m.L);
      // Note: the Theorem 4.1 ring runs on f_T >= P slots, so the stored
      // schedule's machine may be larger than the key's (see
      // Communicator::allreduce for the padding convention).
      plan.schedule = bcast::combining_broadcast(T, m.L).timing_view();
      plan.completion = T;
      plan.method = "combining broadcast (Thm 4.1)";
      break;
    }
    case Problem::kBinomialBroadcast: {
      const auto tree = baselines::binomial_tree(m, m.P);
      plan.schedule = tree.to_schedule(key.root);
      plan.completion = tree.makespan();
      plan.method = "binomial tree";
      break;
    }
    case Problem::kBinaryBroadcast: {
      const auto tree = baselines::binary_tree(m, m.P);
      plan.schedule = tree.to_schedule(key.root);
      plan.completion = tree.makespan();
      plan.method = "binary tree";
      break;
    }
    case Problem::kChainBroadcast: {
      const auto tree = baselines::linear_chain(m, m.P);
      plan.schedule = tree.to_schedule(key.root);
      plan.completion = tree.makespan();
      plan.method = "linear chain";
      break;
    }
    case Problem::kFlatBroadcast: {
      const auto tree = baselines::flat_tree(m, m.P);
      plan.schedule = tree.to_schedule(key.root);
      plan.completion = tree.makespan();
      plan.method = "flat tree";
      break;
    }
    case Problem::kSerializedKItem:
      plan.schedule = baselines::serialized_broadcast(m, k);
      plan.completion = completion_time(plan.schedule);
      plan.method = "serialized optimal";
      break;
    case Problem::kPipelinedBinaryKItem:
      plan.schedule = baselines::pipelined_tree_broadcast(
          baselines::binary_tree(m, m.P), k);
      plan.completion = completion_time(plan.schedule);
      plan.method = "pipelined binary tree";
      break;
    case Problem::kPipelinedChainKItem:
      plan.schedule = baselines::pipelined_tree_broadcast(
          baselines::linear_chain(m, m.P), k);
      plan.completion = completion_time(plan.schedule);
      plan.method = "pipelined chain";
      break;
    case Problem::kHierarchicalBroadcast: {
      // Note the stored schedule's machine is HierParams::flat(), not the
      // key's intra class — the conservative projection hierarchical
      // schedules are stated on (see bcast/hierarchical.hpp).
      auto r = bcast::hierarchical_broadcast(key.hier_params(), key.root);
      plan.schedule = std::move(r.schedule);
      plan.completion = r.completion;
      plan.method = "two-level hierarchical (cluster-aware greedy broadcast)";
      break;
    }
  }
  return plan;
}

const std::shared_ptr<Planner>& Planner::shared_default() {
  static const std::shared_ptr<Planner> planner = std::make_shared<Planner>();
  return planner;
}

}  // namespace logpc::runtime
