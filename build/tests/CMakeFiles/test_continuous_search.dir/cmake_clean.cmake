file(REMOVE_RECURSE
  "CMakeFiles/test_continuous_search.dir/search/continuous_search_test.cpp.o"
  "CMakeFiles/test_continuous_search.dir/search/continuous_search_test.cpp.o.d"
  "test_continuous_search"
  "test_continuous_search.pdb"
  "test_continuous_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_continuous_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
