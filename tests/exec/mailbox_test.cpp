#include "exec/mailbox.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

namespace logpc::exec {
namespace {

Message msg(ItemId item, const std::byte* data = nullptr,
            std::size_t size = 0) {
  return Message{item, data, size};
}

TEST(Mailbox, StartsEmpty) {
  SpscMailbox mb(4);
  EXPECT_EQ(mb.capacity(), 4u);
  EXPECT_EQ(mb.size(), 0u);
  Message out;
  EXPECT_FALSE(mb.try_pop(out));
}

/// Capacity 0 used to be silently clamped to 1, masking degenerate LogP
/// parameters (ceil(L/g) >= 1 on every valid machine).  Now it is rejected
/// loudly so the caller fixes the machine instead of relying on a ring
/// that the model says cannot exist.
TEST(Mailbox, ZeroCapacityIsRejected) {
  EXPECT_THROW(SpscMailbox mb(0), std::invalid_argument);
  EXPECT_THROW(AckRing ar(0), std::invalid_argument);
}

TEST(AckRing, CarriesCumulativeSequenceNumbers) {
  AckRing ar(2);
  EXPECT_TRUE(ar.try_push(1));
  EXPECT_TRUE(ar.try_push(3));
  EXPECT_FALSE(ar.try_push(4));  // full — sender falls back to retransmit
  std::uint64_t seq = 0;
  ASSERT_TRUE(ar.try_pop(seq));
  EXPECT_EQ(seq, 1u);
  ASSERT_TRUE(ar.try_pop(seq));
  EXPECT_EQ(seq, 3u);
  EXPECT_FALSE(ar.try_pop(seq));
}

TEST(Mailbox, RejectsPushWhenFull) {
  SpscMailbox mb(3);
  EXPECT_TRUE(mb.try_push(msg(0)));
  EXPECT_TRUE(mb.try_push(msg(1)));
  EXPECT_TRUE(mb.try_push(msg(2)));
  EXPECT_FALSE(mb.try_push(msg(3)));
  Message out;
  ASSERT_TRUE(mb.try_pop(out));
  EXPECT_EQ(out.item, 0);
  EXPECT_TRUE(mb.try_push(msg(3)));  // slot freed
  EXPECT_FALSE(mb.try_push(msg(4)));
}

TEST(Mailbox, FifoOrder) {
  SpscMailbox mb(8);
  for (ItemId i = 0; i < 8; ++i) ASSERT_TRUE(mb.try_push(msg(i)));
  for (ItemId i = 0; i < 8; ++i) {
    Message out;
    ASSERT_TRUE(mb.try_pop(out));
    EXPECT_EQ(out.item, i);
  }
  EXPECT_EQ(mb.size(), 0u);
}

TEST(Mailbox, WrapsAroundManyTimes) {
  SpscMailbox mb(3);
  ItemId next_pop = 0;
  for (ItemId i = 0; i < 1000; ++i) {
    ASSERT_TRUE(mb.try_push(msg(i)));
    if (i % 2 == 1) {  // drain two every other push to force wrap patterns
      for (int d = 0; d < 2; ++d) {
        Message out;
        ASSERT_TRUE(mb.try_pop(out));
        EXPECT_EQ(out.item, next_pop++);
      }
    }
  }
}

TEST(Mailbox, MaxOccupancyTracksHighWater) {
  SpscMailbox mb(5);
  EXPECT_EQ(mb.max_occupancy(), 0u);
  ASSERT_TRUE(mb.try_push(msg(0)));
  ASSERT_TRUE(mb.try_push(msg(1)));
  EXPECT_EQ(mb.max_occupancy(), 2u);
  Message out;
  ASSERT_TRUE(mb.try_pop(out));
  ASSERT_TRUE(mb.try_push(msg(2)));
  EXPECT_EQ(mb.max_occupancy(), 2u);  // never exceeded 2 in flight
}

/// The contract the engine relies on: payload bytes written before the
/// push are visible to the consumer after the pop, across real threads,
/// with item identity and FIFO order preserved under sustained traffic.
TEST(Mailbox, SpscStressPreservesOrderAndPayload) {
  constexpr int kMessages = 200000;
  constexpr std::size_t kCap = 4;
  SpscMailbox mb(kCap);

  // Stable payload storage: producer writes slot i before pushing message
  // i; the ring's release/acquire pair publishes it.
  std::vector<std::uint64_t> payload(kMessages);

  std::thread producer([&] {
    for (int i = 0; i < kMessages; ++i) {
      payload[static_cast<std::size_t>(i)] =
          0xABCD0000ull + static_cast<std::uint64_t>(i);
      const Message m{
          static_cast<ItemId>(i),
          reinterpret_cast<const std::byte*>(
              &payload[static_cast<std::size_t>(i)]),
          sizeof(std::uint64_t)};
      while (!mb.try_push(m)) std::this_thread::yield();
    }
  });

  std::uint64_t checksum = 0;
  for (int i = 0; i < kMessages; ++i) {
    Message out;
    while (!mb.try_pop(out)) std::this_thread::yield();
    ASSERT_EQ(out.item, i);
    ASSERT_EQ(out.size, sizeof(std::uint64_t));
    std::uint64_t v = 0;
    std::memcpy(&v, out.data, sizeof v);
    ASSERT_EQ(v, 0xABCD0000ull + static_cast<std::uint64_t>(i));
    checksum += v;
  }
  producer.join();
  EXPECT_LE(mb.max_occupancy(), kCap);
  EXPECT_NE(checksum, 0u);
}

}  // namespace
}  // namespace logpc::exec
