#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace logpc::obs {

namespace {

/// Residual-magnitude ladder: 1% .. 500% in a 1-2-5 progression.  The
/// interesting edge for anomaly triage is "how far past the threshold",
/// not nanosecond precision.
std::vector<double> residual_buckets() {
  return {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0};
}

}  // namespace

FlightRecorder::FlightRecorder(Options options) : opts_(options) {
  opts_.capacity = std::max<std::size_t>(opts_.capacity, 1);
  MetricsRegistry& reg =
      opts_.registry != nullptr ? *opts_.registry : MetricsRegistry::global();
  runs_total_ = &reg.counter("logpc_profile_runs_total",
                             "runs analyzed into the flight recorder");
  anomalies_total_ =
      &reg.counter("logpc_profile_anomalies_total",
                   "profiled runs whose model residual crossed the "
                   "anomaly threshold");
  residual_hist_ = &reg.histogram(
      "logpc_profile_residual", residual_buckets(),
      "|measured critical path - scaled predicted makespan| / predicted");
  critical_path_hist_ = &reg.histogram(
      "logpc_profile_critical_path_ns", default_latency_buckets_ns(),
      "measured critical-path length of profiled runs");
}

std::shared_ptr<const RunProfile> FlightRecorder::record(RunProfile profile) {
  profile.anomalous = profile.predicted_ns > 0 &&
                      std::abs(profile.residual) > opts_.residual_threshold;
  auto stored = std::make_shared<const RunProfile>(std::move(profile));
  if (enabled()) {
    runs_total_->inc();
    residual_hist_->observe(std::abs(stored->residual));
    critical_path_hist_->observe(
        static_cast<double>(stored->critical_path_ns));
    if (stored->anomalous) anomalies_total_->inc();
  }
  {
    std::lock_guard lock(mu_);
    ++recorded_;
    if (stored->anomalous) ++anomalies_;
    if (ring_.size() < opts_.capacity) {
      ring_.push_back(stored);
    } else {
      ring_[first_] = stored;
      first_ = (first_ + 1) % opts_.capacity;
    }
  }
  return stored;
}

std::vector<std::shared_ptr<const RunProfile>> FlightRecorder::profiles()
    const {
  std::lock_guard lock(mu_);
  std::vector<std::shared_ptr<const RunProfile>> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(first_ + i) % ring_.size()]);
  }
  return out;
}

std::shared_ptr<const RunProfile> FlightRecorder::last() const {
  std::lock_guard lock(mu_);
  if (ring_.empty()) return nullptr;
  return ring_[(first_ + ring_.size() - 1) % ring_.size()];
}

std::shared_ptr<const RunProfile> FlightRecorder::last_anomaly() const {
  std::lock_guard lock(mu_);
  for (std::size_t i = ring_.size(); i > 0; --i) {
    const auto& p = ring_[(first_ + i - 1) % ring_.size()];
    if (p->anomalous) return p;
  }
  return nullptr;
}

FlightRecorder::Summary FlightRecorder::summary() const {
  std::lock_guard lock(mu_);
  Summary s;
  s.recorded = recorded_;
  s.dropped = recorded_ - ring_.size();
  s.anomalies = anomalies_;
  s.retained = ring_.size();
  if (!ring_.empty()) {
    const auto& newest = ring_[(first_ + ring_.size() - 1) % ring_.size()];
    s.last_residual = newest->residual;
    s.last_critical_path_ns = newest->critical_path_ns;
  }
  return s;
}

}  // namespace logpc::obs
