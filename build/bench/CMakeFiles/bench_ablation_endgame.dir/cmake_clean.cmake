file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_endgame.dir/bench_ablation_endgame.cpp.o"
  "CMakeFiles/bench_ablation_endgame.dir/bench_ablation_endgame.cpp.o.d"
  "bench_ablation_endgame"
  "bench_ablation_endgame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_endgame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
