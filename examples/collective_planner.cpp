/// Collective planner: the downstream use-case the paper enabled - an MPI-
/// style library choosing its collective algorithm from measured machine
/// parameters.  Given (P, L, o, g) and a message count, the planner prices
/// every strategy in cycles and picks the winner per collective:
///
///   broadcast(1)   optimal LogP tree vs binomial / binary / chain / flat
///   broadcast(k)   block-cyclic pipeline vs serialized vs pipelined trees
///   reduce         reversed optimal tree (Section 5)
///   allreduce      combining broadcast (Theorem 4.1) vs reduce+bcast
///   alltoall       the rotation schedule (Section 4.1)
///
///   ./collective_planner [P] [L] [o] [g] [k]

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/bcast_baselines.hpp"
#include "baselines/kitem_baselines.hpp"
#include "bcast/all_to_all.hpp"
#include "bcast/combining.hpp"
#include "bcast/kitem.hpp"
#include "sched/metrics.hpp"
#include "sum/summation_tree.hpp"

namespace {

using namespace logpc;

struct Option {
  std::string name;
  Time cycles;
};

void pick(const std::string& collective, std::vector<Option> options) {
  std::sort(options.begin(), options.end(),
            [](const Option& a, const Option& b) {
              return a.cycles < b.cycles;
            });
  std::cout << collective << ":\n";
  for (std::size_t i = 0; i < options.size(); ++i) {
    std::cout << (i == 0 ? "  -> " : "     ") << std::left << std::setw(28)
              << options[i].name << std::right << std::setw(8)
              << options[i].cycles << " cycles\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  Params params{16, 8, 1, 4};
  int k = 8;
  if (argc >= 2) params.P = std::atoi(argv[1]);
  if (argc >= 3) params.L = std::atol(argv[2]);
  if (argc >= 4) params.o = std::atol(argv[3]);
  if (argc >= 5) params.g = std::atol(argv[4]);
  if (argc >= 6) k = std::atoi(argv[5]);
  params.require_valid();
  std::cout << "planning collectives for " << params << ", k = " << k
            << " items\n\n";

  // --- single-item broadcast -------------------------------------------
  pick("broadcast (1 item)",
       {{"LogP-optimal tree", bcast::B_of_P(params, params.P)},
        {"binomial tree",
         baselines::binomial_tree(params, params.P).makespan()},
        {"binary tree", baselines::binary_tree(params, params.P).makespan()},
        {"chain", baselines::linear_chain(params, params.P).makespan()},
        {"flat", baselines::flat_tree(params, params.P).makespan()}});

  // --- k-item broadcast (postal pricing: L' = L + 2o, g normalized) ------
  // The Section 3 algorithms are stated in the postal model; price them
  // with the effective per-hop latency L + 2o.
  const Time Lp = params.transfer_time();
  const auto kb = bcast::kitem_broadcast(params.P, Lp, k);
  pick("broadcast (" + std::to_string(k) + " items, postal pricing)",
       {{"block-cyclic pipeline", kb.completion},
        {"serialized optimal",
         completion_time(
             baselines::serialized_broadcast(Params::postal(params.P, Lp), k))},
        {"pipelined binary",
         completion_time(baselines::pipelined_tree_broadcast(
             baselines::binary_tree(Params::postal(params.P, Lp), params.P),
             k))},
        {"pipelined chain",
         completion_time(baselines::pipelined_tree_broadcast(
             baselines::linear_chain(Params::postal(params.P, Lp), params.P),
             k))},
        {"Bar-Noy/Kipnis (stated)",
         baselines::bnk_stated_time(params.P, Lp, k)}});

  // --- reduction ---------------------------------------------------------
  if (params.g >= params.o + 1) {
    const Time reduce_t = sum::min_time_for_operands(
        params, static_cast<Count>(params.P));
    pick("reduce (one value per processor)",
         {{"reversed optimal tree", reduce_t}});
  }

  // --- allreduce ----------------------------------------------------------
  const Time combine_T = bcast::combining_time_for(params.P, Lp);
  pick("allreduce (postal pricing)",
       {{"combining broadcast (Thm 4.1)", combine_T},
        {"reduce + broadcast", 2 * combine_T}});

  // --- all-to-all ----------------------------------------------------------
  pick("alltoall",
       {{"rotation schedule (Sec 4.1)", bcast::all_to_all_lower_bound(params)},
        {"naive P broadcasts",
         static_cast<Time>(params.P) * bcast::B_of_P(params, params.P)}});

  std::cout << "\n(the optimal entries are exact LogP cycle counts from the\n"
            << " constructions in this library; baselines are priced on the\n"
            << " same rules)\n";
  return 0;
}
