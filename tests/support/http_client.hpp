#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <string_view>

/// One-shot loopback HTTP/1.1 GET for the introspection tests: connect,
/// send the request, read to EOF (the server closes per response), split
/// status / headers / body.  Deliberately minimal — just enough client to
/// exercise the real TCP path of svc::IntrospectServer.

namespace logpc::testsupport {

struct HttpReply {
  bool ok = false;       ///< transport-level success (connected, got bytes)
  int status = 0;        ///< parsed from the status line
  std::string headers;   ///< raw header block
  std::string body;
};

inline HttpReply http_request(int port, const std::string& target,
                              const std::string& method = "GET") {
  HttpReply reply;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return reply;
  }
  const std::string req = method + " " + target +
                          " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                          "Connection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return reply;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t sep = raw.find("\r\n\r\n");
  if (sep == std::string::npos) return reply;
  reply.headers = raw.substr(0, sep);
  reply.body = raw.substr(sep + 4);
  // "HTTP/1.1 200 OK" -> 200
  const std::size_t sp = reply.headers.find(' ');
  if (sp != std::string::npos) {
    reply.status = std::atoi(reply.headers.c_str() + sp + 1);
  }
  reply.ok = reply.status != 0;
  return reply;
}

inline HttpReply http_get(int port, const std::string& target) {
  return http_request(port, target);
}

}  // namespace logpc::testsupport
