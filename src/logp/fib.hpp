#pragma once

#include <cstdint>
#include <vector>

#include "logp/time.hpp"

/// \file fib.hpp
/// The generalized Fibonacci sequence of Definition 2.5 and the postal-model
/// broadcast quantities built on it:
///
///   f_i = 1                  for 0 <= i < L,
///   f_i = f_{i-1} + f_{i-L}  otherwise.
///
/// Theorem 2.2: in the postal model (g = 1, o = 0) the number of processors
/// reachable by single-item broadcast in t steps is P(t; L, 0, 1) = f_t.
/// Fact 2.1:   1 + sum_{i=0..t} f_i = f_{t+L}.

namespace logpc {

/// Saturating counter type for processor counts, which grow exponentially in
/// t.  Values are exact until they would exceed kSaturated, after which they
/// clamp (queries that need exact values stay well below the clamp).
using Count = std::uint64_t;

/// Clamp value for saturating arithmetic on Count.
inline constexpr Count kSaturated = Count{1} << 62;

/// a + b with saturation at kSaturated.
[[nodiscard]] Count sat_add(Count a, Count b);

/// The generalized Fibonacci sequence for a fixed latency L >= 1, memoized.
///
/// Thread-compatible: each instance owns its memo; use one per thread or
/// guard externally.
class Fib {
 public:
  /// \param L postal-model latency, L >= 1 (throws std::invalid_argument
  ///          otherwise).  For L == 1 the sequence is f_i = 2^i.
  explicit Fib(Time L);

  [[nodiscard]] Time latency() const { return L_; }

  /// f_i (saturating).  i must be >= 0.
  [[nodiscard]] Count f(Time i) const;

  /// sum_{j=0..i} f_j (saturating); sum(-1) == 0.
  [[nodiscard]] Count sum(Time i) const;

  /// P(t): maximum processors reachable by a t-step postal broadcast
  /// (Theorem 2.2).  Equals f(t).
  [[nodiscard]] Count P_of_t(Time t) const { return f(t); }

  /// B(P): minimum steps for a postal single-item broadcast to P processors;
  /// the least t with f_t >= P.  P must be >= 1.
  [[nodiscard]] Time B_of_P(Count P) const;

  /// True iff P == P(t) for some t, i.e. the optimal broadcast tree on P
  /// nodes is "full"/unique in the paper's sense (Section 3.1 restricts to
  /// such P - 1).
  [[nodiscard]] bool is_exact_P(Count P) const;

  /// k*(P) of Theorem 3.1: with n the index such that f_n < P-1 <= f_{n+1}
  /// (so B(P-1) = n + 1), k* = floor(sum_{i=0..n} f_i / (P-1)).
  /// Requires P >= 2 and P - 1 small enough to be exact.
  [[nodiscard]] Count k_star(Count P) const;

 private:
  Time L_;
  mutable std::vector<Count> f_;    // f_[i] = f_i
  mutable std::vector<Count> sum_;  // sum_[i] = f_0 + ... + f_i

  void extend(Time i) const;
};

/// ---- shared process-wide tables ----------------------------------------
///
/// The planning runtime (src/runtime) asks for B(P), k* and f_i for the
/// same handful of latencies over and over — once per cache miss, from many
/// threads.  These accessors answer from one memoized table per latency,
/// built once behind a static registry + lock, so repeated queries never
/// recompute the sequence.  Thread-safe (unlike the plain Fib class, which
/// stays lock-free for single-owner inner loops).

/// f_i for latency L, from the shared table.
[[nodiscard]] Count shared_fib_f(Time L, Time i);

/// sum_{j=0..i} f_j for latency L, from the shared table.
[[nodiscard]] Count shared_fib_sum(Time L, Time i);

/// B(P) for latency L, from the shared table.
[[nodiscard]] Time shared_B_of_P(Time L, Count P);

/// Fib::is_exact_P against the shared table.
[[nodiscard]] bool shared_is_exact_P(Time L, Count P);

/// k*(P) of Theorem 3.1 against the shared table.
[[nodiscard]] Count shared_k_star(Time L, Count P);

}  // namespace logpc
