# Empty dependencies file for collective_planner.
# This may be replaced when dependencies are built.
