#include "sim/calibrate.hpp"

#include <gtest/gtest.h>

namespace logpc::sim {
namespace {

class CalibrateGrid : public ::testing::TestWithParam<Params> {};

// The probes must measure back exactly the configured parameters - a
// semantic self-check of the simulator.
TEST_P(CalibrateGrid, RecoversConfiguredParameters) {
  const Params actual = GetParam();
  const MeasuredParams m = calibrate(actual);
  EXPECT_EQ(m.P, actual.P);
  EXPECT_EQ(m.L, actual.L);
  EXPECT_EQ(m.o, actual.o);
  EXPECT_EQ(m.g, actual.g);
  EXPECT_EQ(m.as_params(), actual);
}

INSTANTIATE_TEST_SUITE_P(
    Machines, CalibrateGrid,
    ::testing::Values(Params{8, 6, 2, 4}, Params::postal(4, 1),
                      Params::postal(16, 7), Params{3, 1, 0, 5},
                      Params{5, 12, 3, 6}, Params{7, 2, 1, 9},
                      Params{64, 20, 5, 8}));

TEST(Calibrate, RejectsInvalidMachine) {
  EXPECT_THROW((void)calibrate(Params{0, 1, 0, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace logpc::sim
