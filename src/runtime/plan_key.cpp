#include "runtime/plan_key.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace logpc::runtime {

namespace {

/// Problems whose plan ignores the requested root (fixed source 0 or fully
/// symmetric), so the key normalizes root to 0.
bool uses_root(Problem p) {
  switch (p) {
    case Problem::kBroadcast:
    case Problem::kScatter:
    case Problem::kGather:
    case Problem::kReduce:
    case Problem::kBinomialBroadcast:
    case Problem::kBinaryBroadcast:
    case Problem::kChainBroadcast:
    case Problem::kFlatBroadcast:
    case Problem::kHierarchicalBroadcast:
      return true;
    default:
      return false;
  }
}

/// Problems parameterized by an item / operand count.
bool uses_k(Problem p) {
  switch (p) {
    case Problem::kKItemBroadcast:
    case Problem::kBufferedKItemBroadcast:
    case Problem::kSummation:
    case Problem::kAllToAll:
    case Problem::kSerializedKItem:
    case Problem::kPipelinedBinaryKItem:
    case Problem::kPipelinedChainKItem:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string_view problem_name(Problem p) {
  switch (p) {
    case Problem::kBroadcast:              return "broadcast";
    case Problem::kKItemBroadcast:         return "kitem";
    case Problem::kBufferedKItemBroadcast: return "kitem-buffered";
    case Problem::kScatter:                return "scatter";
    case Problem::kGather:                 return "gather";
    case Problem::kReduce:                 return "reduce";
    case Problem::kSummation:              return "summation";
    case Problem::kAllToAll:               return "alltoall";
    case Problem::kAllToAllPersonalized:   return "alltoall-personalized";
    case Problem::kAllReduce:              return "allreduce";
    case Problem::kBinomialBroadcast:      return "binomial-broadcast";
    case Problem::kBinaryBroadcast:        return "binary-broadcast";
    case Problem::kChainBroadcast:         return "chain-broadcast";
    case Problem::kFlatBroadcast:          return "flat-broadcast";
    case Problem::kSerializedKItem:        return "serialized-kitem";
    case Problem::kPipelinedBinaryKItem:   return "pipelined-binary-kitem";
    case Problem::kPipelinedChainKItem:    return "pipelined-chain-kitem";
    case Problem::kHierarchicalBroadcast:  return "hierarchical-broadcast";
  }
  return "unknown";
}

bool is_postal_problem(Problem p) {
  switch (p) {
    case Problem::kKItemBroadcast:
    case Problem::kBufferedKItemBroadcast:
    case Problem::kAllReduce:
    case Problem::kSerializedKItem:
    case Problem::kPipelinedBinaryKItem:
    case Problem::kPipelinedChainKItem:
      return true;
    default:
      return false;
  }
}

PlanKey PlanKey::make(Problem problem, const Params& params, std::int64_t k,
                      ProcId root, std::uint64_t mask, std::int32_t clusters,
                      Time cross_L, Time cross_o, Time cross_g) {
  params.require_valid();
  if (k < 1) throw std::invalid_argument("PlanKey: k must be >= 1");
  if (root < 0 || root >= params.P) {
    throw std::invalid_argument("PlanKey: root out of range");
  }
  if (problem == Problem::kHierarchicalBroadcast) {
    if (clusters < 1 || clusters > params.P) {
      throw std::invalid_argument(
          "PlanKey: hierarchical keys need clusters in [1, P]");
    }
    if (mask != 0) {
      throw std::invalid_argument(
          "PlanKey: membership masks are topology-blind; no masked "
          "hierarchical keys");
    }
    Params cross;
    cross.P = clusters;
    cross.L = cross_L;
    cross.o = cross_o;
    cross.g = cross_g;
    cross.require_valid();
    // Degenerate topologies fold into the flat optimal problem: a single
    // cluster never uses a cross link, all-singleton clusters never use an
    // intra link — either way the plan is the Theorem 2.1 tree on the one
    // live class, so the key must not split the cache from kBroadcast's.
    if (clusters == 1) {
      return make(Problem::kBroadcast, params, 1, root);
    }
    if (clusters == params.P) {
      Params flat_cross = cross;
      flat_cross.P = params.P;
      return make(Problem::kBroadcast, flat_cross, 1, root);
    }
  } else if (clusters != 0 || cross_L != 0 || cross_o != 0 || cross_g != 0) {
    throw std::invalid_argument(
        "PlanKey: topology fields are exclusive to kHierarchicalBroadcast");
  }
  PlanKey key;
  key.problem = problem;
  key.params = is_postal_problem(problem)
                   ? Params::postal(params.P, params.transfer_time())
                   : params;
  key.k = uses_k(problem) ? k : 1;
  key.root = uses_root(problem) ? root : 0;
  if (problem == Problem::kHierarchicalBroadcast) {
    key.clusters = clusters;
    key.cross_L = cross_L;
    key.cross_o = cross_o;
    key.cross_g = cross_g;
  }
  if (mask != 0) {
    if (params.P > 64) {
      throw std::invalid_argument(
          "PlanKey: membership masks require P <= 64");
    }
    const std::uint64_t full =
        params.P == 64 ? ~0ull : (1ull << params.P) - 1;
    if ((mask & ~full) != 0) {
      throw std::invalid_argument("PlanKey: mask has bits >= P set");
    }
    if (uses_root(problem) && ((mask >> key.root) & 1) == 0) {
      throw std::invalid_argument(
          "PlanKey: mask excludes the root of a rooted problem");
    }
    key.mask = mask == full ? 0 : mask;  // full membership is the fast path
  }
  return key;
}

PlanKey PlanKey::broadcast(const Params& p, ProcId root) {
  return make(Problem::kBroadcast, p, 1, root);
}
PlanKey PlanKey::kitem(const Params& p, std::int64_t k) {
  return make(Problem::kKItemBroadcast, p, k);
}
PlanKey PlanKey::segmented_broadcast(const Params& p, std::int64_t segments) {
  return kitem(p, segments);
}
PlanKey PlanKey::kitem_buffered(const Params& p, std::int64_t k) {
  return make(Problem::kBufferedKItemBroadcast, p, k);
}
PlanKey PlanKey::scatter(const Params& p, ProcId root) {
  return make(Problem::kScatter, p, 1, root);
}
PlanKey PlanKey::gather(const Params& p, ProcId root) {
  return make(Problem::kGather, p, 1, root);
}
PlanKey PlanKey::reduce(const Params& p, ProcId root) {
  return make(Problem::kReduce, p, 1, root);
}
PlanKey PlanKey::summation(const Params& p, std::int64_t n) {
  return make(Problem::kSummation, p, n);
}
PlanKey PlanKey::alltoall(const Params& p, std::int64_t k) {
  return make(Problem::kAllToAll, p, k);
}
PlanKey PlanKey::alltoall_personalized(const Params& p) {
  return make(Problem::kAllToAllPersonalized, p);
}
PlanKey PlanKey::allreduce(const Params& p) {
  return make(Problem::kAllReduce, p);
}
PlanKey PlanKey::hierarchical(const HierParams& h, ProcId root) {
  h.require_valid();
  if (!h.is_uniform_blocks()) {
    throw std::invalid_argument(
        "PlanKey: only the uniform balanced-block topology "
        "(HierParams::uniform) is cache-keyable");
  }
  return make(Problem::kHierarchicalBroadcast, h.intra, 1, root, 0,
              h.num_clusters(), h.cross.L, h.cross.o, h.cross.g);
}

HierParams PlanKey::hier_params() const {
  if (problem != Problem::kHierarchicalBroadcast) {
    throw std::logic_error("PlanKey: not a hierarchical key");
  }
  Params cross;
  cross.P = clusters;
  cross.L = cross_L;
  cross.o = cross_o;
  cross.g = cross_g;
  return HierParams::uniform(params.P, clusters, params, cross);
}

std::string PlanKey::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::size_t PlanKey::hash() const {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;  // FNV-1a prime
  };
  mix(static_cast<std::uint64_t>(problem));
  mix(static_cast<std::uint64_t>(params.P));
  mix(static_cast<std::uint64_t>(params.L));
  mix(static_cast<std::uint64_t>(params.o));
  mix(static_cast<std::uint64_t>(params.g));
  mix(static_cast<std::uint64_t>(k));
  mix(static_cast<std::uint64_t>(root));
  mix(mask);
  mix(static_cast<std::uint64_t>(clusters));
  mix(static_cast<std::uint64_t>(cross_L));
  mix(static_cast<std::uint64_t>(cross_o));
  mix(static_cast<std::uint64_t>(cross_g));
  return static_cast<std::size_t>(h);
}

std::ostream& operator<<(std::ostream& os, const PlanKey& key) {
  os << problem_name(key.problem) << "(" << key.params << ", k=" << key.k
     << ", root=" << key.root;
  if (key.mask != 0) {
    os << ", mask=0x" << std::hex << key.mask << std::dec;
  }
  if (key.clusters != 0) {
    os << ", clusters=" << key.clusters << ", cross(L=" << key.cross_L
       << " o=" << key.cross_o << " g=" << key.cross_g << ")";
  }
  os << ")";
  return os;
}

}  // namespace logpc::runtime
