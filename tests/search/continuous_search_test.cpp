#include "search/continuous_search.hpp"

#include <gtest/gtest.h>

#include "sched/metrics.hpp"
#include "validate/checker.hpp"

namespace logpc::search {
namespace {

using bcast::SolveStatus;
using bcast::emit_k_items;

TEST(ContinuousSearch, Theorem35L2OneExtraStepSuffices) {
  // L = 2, P - 1 = P(t): optimal delay impossible (Theorem 3.4) but
  // L + t + 1 achievable (Theorem 3.5).
  const Fib fib(2);
  for (Time t = 4; t <= 9; ++t) {
    const int m = static_cast<int>(fib.f(t));
    const auto res = plan_with_slack(2, m, 1);
    ASSERT_EQ(res.status, SolveStatus::kSolved) << "t=" << t;
    EXPECT_EQ(res.plan->delay(), 2 + t + 1);
    const Schedule s = emit_k_items(*res.plan, 4);
    EXPECT_TRUE(validate::is_valid(s)) << validate::check(s).summary();
    EXPECT_EQ(max_delay(s), 2 + t + 1);
  }
}

TEST(ContinuousSearch, PaperL4T8CaseSolvedWithOneExtraStep) {
  // The paper's isolated remark: L = 4, t = 8 (f_8 = 7) has no minimum-
  // delay block-cyclic schedule; slack 1 fixes it.
  const auto strict = plan_with_slack(4, 7, 0);
  EXPECT_NE(strict.status, SolveStatus::kSolved);
  const auto slack1 = plan_with_slack(4, 7, 1);
  ASSERT_EQ(slack1.status, SolveStatus::kSolved);
  EXPECT_EQ(slack1.plan->delay(), 4 + 8 + 1);
}

TEST(ContinuousSearch, SlackZeroEqualsPlanContinuousWhenSolvable) {
  const auto direct = bcast::plan_continuous(3, 7);
  const auto searched = plan_with_slack(3, 9, 0);
  ASSERT_EQ(direct.status, SolveStatus::kSolved);
  ASSERT_EQ(searched.status, SolveStatus::kSolved);
  EXPECT_EQ(direct.plan->delay(), searched.plan->delay());
}

TEST(ContinuousSearch, NonExactPGetsWithinOneOfOptimal) {
  // The generalization beyond the paper: arbitrary receiver counts.
  for (const Time L : {1, 2, 3, 4}) {
    for (int m = 2; m <= 24; ++m) {
      const auto res = best_continuous_plan(L, m);
      ASSERT_EQ(res.status, SolveStatus::kSolved) << "L=" << L << " m=" << m;
      const Time optimal =
          bcast::B_of_P(Params::postal(m, L), m) + L;
      EXPECT_LE(res.plan->delay(), optimal + 1) << "L=" << L << " m=" << m;
      const Schedule s = emit_k_items(*res.plan, 3);
      EXPECT_TRUE(validate::is_valid(s))
          << "L=" << L << " m=" << m << "\n"
          << validate::check(s).summary();
    }
  }
}

TEST(ContinuousSearch, BestPlanPrefersOptimalDelay) {
  const auto res = best_continuous_plan(3, 9);
  ASSERT_EQ(res.status, SolveStatus::kSolved);
  EXPECT_EQ(res.plan->delay(), 3 + 7);  // B(9) = 7, no slack needed
}

TEST(ContinuousSearch, RejectsBadArguments) {
  EXPECT_THROW(plan_with_slack(0, 4, 1), std::invalid_argument);
  EXPECT_THROW(plan_with_slack(3, 0, 1), std::invalid_argument);
  EXPECT_THROW(plan_with_slack(3, 4, -1), std::invalid_argument);
}

}  // namespace
}  // namespace logpc::search
