/// The planning-runtime bench: cold vs. warm planning throughput through
/// the concurrent plan cache (src/runtime), for a k-item broadcast grid,
/// under 1, 4 and 8 requester threads.
///
/// Cold = every request routed to the Section 3 builders (fresh planner per
/// pass, measured via Planner::build_uncached); warm = the same requests
/// served from the sharded LRU cache.  The ISSUE's acceptance bar is a
/// >= 50x warm speedup; typical results are orders of magnitude beyond it.

#include "bench_util.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/implicit_plan.hpp"
#include "runtime/planner.hpp"
#include "runtime/snapshot.hpp"
#include "runtime/warmup.hpp"
#include "sim/implicit_sim.hpp"

namespace {

using namespace logpc;
using runtime::PlanKey;
using runtime::Planner;
using logpc::bench::Table;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The k-item broadcast grid the acceptance criterion names.
std::vector<PlanKey> kitem_grid() {
  runtime::WarmupGrid grid;
  grid.problems = {runtime::Problem::kKItemBroadcast};
  for (const int P : {6, 9, 10, 13, 17, 22}) {
    for (const Time L : {2, 3, 4}) {
      grid.machines.push_back(Params::postal(P, L));
    }
  }
  grid.ks = {2, 4, 8, 16};
  return grid.keys();
}

/// One timed pass: `threads` workers plan every key in `keys` against
/// `planner`, work-stealing off a shared counter.  Returns seconds.
double run_pass(Planner& planner, const std::vector<PlanKey>& keys,
                unsigned threads) {
  std::atomic<std::size_t> next{0};
  const auto start = Clock::now();
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= keys.size()) return;
      benchmark::DoNotOptimize(planner.plan(keys[i]));
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return seconds_since(start);
}

/// Mean ns per warm planner.plan(key) over `iters` calls.
double warm_ns_per_op(Planner& planner, const PlanKey& key, int iters) {
  const auto start = Clock::now();
  for (int i = 0; i < iters; ++i) {
    benchmark::DoNotOptimize(planner.plan(key));
  }
  return seconds_since(start) * 1e9 / iters;
}

void report() {
  logpc::bench::JsonReport json("plan_cache");
  logpc::bench::section("plan-cache runtime: cold vs warm planning");
  const std::vector<PlanKey> keys = kitem_grid();
  std::cout << keys.size() << " distinct k-item keys "
            << "(P in {6..22}, L in {2..4}, k in {2..16})\n\n";

  // Warm reference pass count: hammer the cached keys many times over so
  // the warm timing is measurable.
  constexpr int kWarmRounds = 200;
  std::vector<PlanKey> warm_keys;
  warm_keys.reserve(keys.size() * kWarmRounds);
  for (int r = 0; r < kWarmRounds; ++r) {
    warm_keys.insert(warm_keys.end(), keys.begin(), keys.end());
  }

  Table t({"threads", "cold plans/s", "warm plans/s", "speedup",
           ">=50x"});
  for (const unsigned threads : {1u, 4u, 8u}) {
    // Cold: a fresh planner; every request reaches a builder (the warmup
    // pool reports built == keys so each key is constructed exactly once —
    // throughput is builds over wall time).
    Planner cold;
    const auto cold_start = Clock::now();
    const runtime::WarmupReport cold_report =
        runtime::warmup(cold, keys, threads);
    const double cold_secs = seconds_since(cold_start);
    const double cold_rate =
        static_cast<double>(cold_report.built) / cold_secs;

    // Warm: same planner, same keys, many rounds, all cache hits.
    const double warm_secs = run_pass(cold, warm_keys, threads);
    const double warm_rate =
        static_cast<double>(warm_keys.size()) / warm_secs;

    const double speedup = warm_rate / cold_rate;
    t.row(threads, static_cast<std::int64_t>(cold_rate),
          static_cast<std::int64_t>(warm_rate),
          static_cast<std::int64_t>(speedup),
          logpc::bench::ok(speedup >= 50.0));

    const runtime::CacheStats cs = cold.cache().stats();
    json.entry("cold_vs_warm", {{"threads", std::to_string(threads)}},
               {{"cold_plans_per_s", cold_rate},
                {"warm_plans_per_s", warm_rate},
                {"speedup", speedup},
                {"warm_ns_per_op", 1e9 / warm_rate},
                {"cache_hits", static_cast<double>(cs.hits)},
                {"cache_misses", static_cast<double>(cs.misses)},
                {"cache_hit_ratio", cs.hit_ratio()},
                {"cache_entries", static_cast<double>(cs.entries)}});
  }
  t.print();

  // Telemetry overhead on the warm path: the same single-key hit loop with
  // the obs layer enabled vs disabled (best of three passes each, to shake
  // out scheduler noise).  The acceptance bar is < 5%.
  logpc::bench::section("telemetry overhead on warm Planner::plan");
  {
    Planner planner;
    const PlanKey key = PlanKey::kitem(Params::postal(17, 3), 8);
    (void)planner.plan(key);
    constexpr int kIters = 1'000'000;
    (void)warm_ns_per_op(planner, key, kIters / 10);  // warm up caches
    double on_ns = 1e300;
    double off_ns = 1e300;
    for (int round = 0; round < 3; ++round) {
      obs::set_enabled(true);
      on_ns = std::min(on_ns, warm_ns_per_op(planner, key, kIters));
      obs::set_enabled(false);
      off_ns = std::min(off_ns, warm_ns_per_op(planner, key, kIters));
    }
    obs::set_enabled(true);
    const double overhead_pct = (on_ns - off_ns) / off_ns * 100.0;
    std::cout << "enabled " << on_ns << " ns/op, disabled " << off_ns
              << " ns/op, overhead " << overhead_pct << "% ("
              << logpc::bench::ok(overhead_pct < 5.0) << ": < 5%)\n";
    json.entry("telemetry_overhead", {},
               {{"enabled_ns_per_op", on_ns},
                {"disabled_ns_per_op", off_ns},
                {"overhead_pct", overhead_pct}});
  }

  // Snapshot round-trip sanity: a serving process starting from the saved
  // cache plans without a single build.
  Planner producer;
  (void)runtime::warmup(producer, keys, 4);
  std::stringstream snap;
  const std::size_t saved = runtime::save_snapshot(producer.cache(), snap);
  Planner consumer;
  (void)runtime::load_snapshot(consumer.cache(), snap);
  const double replay_secs = run_pass(consumer, keys, 1);
  std::cout << "\nsnapshot: " << saved << " plans saved; hot-started replay"
            << " of the grid took " << replay_secs * 1e3 << " ms with "
            << consumer.builds() << " builds (expect 0)\n";
  json.entry("snapshot_replay", {},
             {{"plans_saved", static_cast<double>(saved)},
              {"replay_ms", replay_secs * 1e3},
              {"replay_builds", static_cast<double>(consumer.builds())}});

  // ---- implicit vs materialized build latency (single-item broadcast) ---
  // The large-P acceptance bar: building the O(log P) generator form must
  // beat materializing the per-op IR by >= 100x at the top of the grid,
  // and planning + structurally simulating P = 1M must succeed — this is
  // the CI million-rank smoke.
  logpc::bench::section(
      "implicit vs materialized plan-build latency (optimal broadcast)");
  bool gate_ok = true;
  double top_speedup = 0.0;
  {
    Table grid({"P", "materialized ms", "implicit us", "speedup",
                "implicit bytes"});
    for (const int P : {1 << 10, 1 << 14, 1 << 17, 1 << 20}) {
      const PlanKey key = PlanKey::broadcast(Params{P, 4, 1, 2});
      double mat_secs = 1e300;
      double imp_secs = 1e300;
      const int rounds = P >= (1 << 17) ? 2 : 3;
      for (int r = 0; r < rounds; ++r) {
        const auto s0 = Clock::now();
        benchmark::DoNotOptimize(Planner::build_uncached(key));
        mat_secs = std::min(mat_secs, seconds_since(s0));
      }
      for (int r = 0; r < 5; ++r) {
        const auto s0 = Clock::now();
        benchmark::DoNotOptimize(
            Planner::build_uncached(key, /*materialize=*/false));
        imp_secs = std::min(imp_secs, seconds_since(s0));
      }
      const double speedup = mat_secs / imp_secs;
      top_speedup = speedup;  // last row = largest P
      const std::size_t bytes =
          runtime::ImplicitPlan::build(key).memory_bytes();
      grid.row(P, mat_secs * 1e3, imp_secs * 1e6,
               static_cast<std::int64_t>(speedup),
               static_cast<std::int64_t>(bytes));
      json.entry("implicit_vs_materialized",
                 {{"P", std::to_string(P)}},
                 {{"materialized_build_ms", mat_secs * 1e3},
                  {"implicit_build_us", imp_secs * 1e6},
                  {"speedup", speedup},
                  {"implicit_bytes", static_cast<double>(bytes)}});
    }
    grid.print();
    std::cout << "speedup at P = 2^20: " << top_speedup << "x ("
              << logpc::bench::ok(top_speedup >= 100.0) << ": >= 100x)\n";
    if (top_speedup < 100.0) gate_ok = false;
  }

  // ---- million-rank smoke: plan, simulate, query ------------------------
  logpc::bench::section("million-rank planning smoke (P = 1,000,000)");
  {
    const Params m{1'000'000, 4, 1, 2};
    Planner planner;  // default threshold: 1M plans stay implicit-only
    const auto plan_start = Clock::now();
    const runtime::PlanPtr plan = planner.plan(PlanKey::broadcast(m));
    const double plan_secs = seconds_since(plan_start);
    const bool implicit_only =
        plan->implicit != nullptr && !plan->materialized;

    const auto sim_start = Clock::now();
    const sim::ImplicitRunResult run =
        implicit_only ? sim::run_implicit(*plan->implicit)
                      : sim::ImplicitRunResult{};
    const double sim_secs = seconds_since(sim_start);

    // Per-rank query latency over scattered ranks (O(log P) decodes).
    double query_ns = 0.0;
    if (implicit_only) {
      constexpr int kQueries = 10'000;
      std::uint64_t seed = 0x9e3779b97f4a7c15ull;
      const auto q0 = Clock::now();
      for (int i = 0; i < kQueries; ++i) {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        const auto p = static_cast<ProcId>(seed % 1'000'000);
        benchmark::DoNotOptimize(plan->implicit->rank_schedule(p));
      }
      query_ns = seconds_since(q0) * 1e9 / kQueries;
    }

    std::cout << "plan build " << plan_secs * 1e3 << " ms, full 1M-rank sim "
              << sim_secs * 1e3 << " ms (" << (run.ok ? "ok" : "FAILED")
              << "), rank_schedule " << query_ns << " ns/query, entry "
              << (implicit_only ? plan->implicit->memory_bytes() : 0)
              << " bytes\n";
    if (!implicit_only || !run.ok) {
      std::cout << "million-rank smoke FAILED"
                << (run.error.empty() ? "" : ": " + run.error) << "\n";
      gate_ok = false;
    }
    json.entry("million_rank", {},
               {{"plan_ms", plan_secs * 1e3},
                {"sim_ms", sim_secs * 1e3},
                {"sim_ok", run.ok ? 1.0 : 0.0},
                {"ranks", static_cast<double>(run.ranks)},
                {"makespan", static_cast<double>(run.makespan)},
                {"rank_query_ns", query_ns},
                {"implicit_bytes",
                 implicit_only
                     ? static_cast<double>(plan->implicit->memory_bytes())
                     : 0.0}});
  }

  json.attach_metrics(obs::MetricsRegistry::global());
  const std::string path = json.write();
  std::cout << (path.empty() ? "FAILED to write bench json"
                             : "bench json: " + path)
            << "\n";
  if (!gate_ok) {
    std::cout << "bench_plan_cache: implicit-plan acceptance gate FAILED\n";
    std::exit(1);
  }
}

void BM_ColdPlan(benchmark::State& state) {
  const PlanKey key = PlanKey::kitem(Params::postal(17, 3), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Planner::build_uncached(key));
  }
}
BENCHMARK(BM_ColdPlan);

void BM_WarmPlan(benchmark::State& state) {
  Planner planner;
  const PlanKey key = PlanKey::kitem(Params::postal(17, 3), 8);
  (void)planner.plan(key);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(key));
  }
}
BENCHMARK(BM_WarmPlan);

void BM_WarmPlanContended(benchmark::State& state) {
  // google-benchmark threads all hammer one cached key.
  static Planner* planner = new Planner;
  const PlanKey key = PlanKey::kitem(Params::postal(17, 3), 8);
  (void)planner->plan(key);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner->plan(key));
  }
}
BENCHMARK(BM_WarmPlanContended)->Threads(4)->Threads(8);

}  // namespace

LOGPC_BENCH_MAIN(report)
