#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "runtime/planner.hpp"
#include "tune/tuner.hpp"

/// bench_tuning: does measured per-segment selection beat any one fixed
/// schedule, and is the tuned planner fast path free when warm?
///
/// Runs the auto-tuner's real-engine grid (tune::auto_tune) over
/// (P, payload-size) segments, then scores two acceptance gates:
///
///  1. Selection quality.  A "fixed schedule" is one candidate family
///     (optimal tree, a baseline tree, the always-split segmented
///     pipeline, the hierarchical schedule) used for *every* segment; the
///     best fixed family is the one with the lowest total across the
///     grid.  The tuned table picks per segment, so it must beat even
///     that best fixed family by >= LOGPC_TUNING_MARGIN (default 10%) on
///     >= LOGPC_TUNING_MIN_WINS segments (default 2) — otherwise the
///     whole tuning subsystem isn't paying for itself and the run exits
///     non-zero.
///
///  2. Warm-path overhead.  With the decision table installed,
///     Planner::plan_tuned must stay within LOGPC_TUNED_PLAN_OVERHEAD_MAX
///     (default 5%) of a plain warm Planner::plan cache hit.  Both sides
///     are timed in interleaved rounds (bench_profile's de-drifting) and
///     the pooled medians compared — a same-machine ratio, stable on
///     loaded runners.
///
/// BENCH_tuning.json records every segment's per-family medians and the
/// winner, so scripts/perf_diff.py --tuning can flag winner flips against
/// the committed baseline (a flip is a warning, not a failure: two
/// families within noise of each other may legitimately trade places).
/// The tuned table itself is saved to $LOGPC_BENCH_DIR/decision_table.snap
/// for the CI artifact trail.

namespace logpc::bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kPlanBatch = 8192;
constexpr int kPlanRounds = 9;

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atof(v) : fallback;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  if (v.empty()) return 0;
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// "segmented(k=4)" -> "segmented"; "binomial-broadcast" -> "binomial";
/// the family a candidate belongs to when used as a fixed policy.
std::string family_of(const std::string& candidate_name) {
  std::string f = candidate_name.substr(0, candidate_name.find('('));
  const std::size_t dash = f.find('-');
  if (dash != std::string::npos) f = f.substr(0, dash);
  return f;
}

int run() {
  tune::TunerOptions opts;
  opts.Ps = {4, 8, 16};
  // The two regimes measured winners split on: at 4 KiB the per-hop
  // wakeup cost dominates, so shallow trees win and deep/split schedules
  // pay their depth; at 4 MiB per-hop memcpy bandwidth dominates, where
  // fan-out trees contend for memory and send-once shapes (chain,
  // two-level) win.  The LogP cycle model prices neither effect — which
  // is the argument for measuring.
  opts.sizes = {4096, 4u << 20};
  // clusters=4 exists only for P >= 8, so the hierarchical candidate is
  // tuned where valid but is not a grid-wide fixed policy.
  opts.clusters = 4;
  opts.trials = 7;
  opts.warmup = 2;
  opts.planner = std::make_shared<runtime::Planner>();

  section("auto-tuning grid (real engine, interleaved trials)");
  const tune::TuneReport report = tune::auto_tune(opts);

  // Per-segment table plus per-family medians for the fixed-policy score.
  // family -> per-segment median (indexed like report.segments).
  std::map<std::string, std::vector<double>> family_ns;
  Table grid({"P", "bytes", "class", "winner", "tuned (ns)",
              "runner-up (ns)"});
  JsonReport json("tuning");
  for (std::size_t s = 0; s < report.segments.size(); ++s) {
    const tune::SegmentResult& seg = report.segments[s];
    grid.row(seg.P, seg.bytes, seg.size_class, seg.timings.front().name,
             seg.winner.win_ns, seg.winner.runner_up_ns);
    std::vector<std::pair<std::string, double>> values{
        {"tuned_ns", seg.winner.win_ns},
        {"runner_up_ns", seg.winner.runner_up_ns}};
    for (const tune::CandidateTiming& t : seg.timings) {
      values.emplace_back(family_of(t.name) + "_ns", t.median_ns);
      family_ns[family_of(t.name)].resize(report.segments.size(), 0);
      family_ns[family_of(t.name)][s] = t.median_ns;
    }
    json.entry("segment",
               {{"P", std::to_string(seg.P)},
                {"bytes", std::to_string(seg.bytes)},
                {"size_class", std::to_string(seg.size_class)},
                {"winner", seg.timings.front().name}},
               values);
  }
  grid.print();

  // Gate 1: tuned selection vs the best single fixed family.  Only
  // families measured on every segment qualify as a fixed policy.
  std::string best_fixed;
  double best_fixed_total = 0;
  for (const auto& [family, ns] : family_ns) {
    if (std::count(ns.begin(), ns.end(), 0.0) > 0) continue;
    double total = 0;
    for (const double v : ns) total += v;
    if (best_fixed.empty() || total < best_fixed_total) {
      best_fixed = family;
      best_fixed_total = total;
    }
  }
  const double margin = env_double("LOGPC_TUNING_MARGIN", 0.10);
  const int min_wins =
      static_cast<int>(env_double("LOGPC_TUNING_MIN_WINS", 2));
  double tuned_total = 0;
  int wins = 0;
  Table vs({"P", "bytes", "tuned (ns)", best_fixed + " (ns)", "gain"});
  for (std::size_t s = 0; s < report.segments.size(); ++s) {
    const tune::SegmentResult& seg = report.segments[s];
    const double tuned = seg.winner.win_ns;
    const double fixed = family_ns[best_fixed][s];
    tuned_total += tuned;
    const double gain = 1.0 - tuned / fixed;
    if (tuned <= fixed * (1.0 - margin)) ++wins;
    vs.row(seg.P, seg.bytes, tuned, fixed,
           std::to_string(gain * 100) + "%");
  }
  section("tuned selection vs best fixed schedule (" + best_fixed + ")");
  vs.print();
  std::cout << "\ntotal: tuned=" << tuned_total
            << "ns best-fixed=" << best_fixed_total << "ns; " << wins
            << " segment(s) tuned >= " << margin * 100 << "% faster\n";
  json.entry("fixed_vs_tuned", {{"best_fixed", best_fixed}},
             {{"tuned_total_ns", tuned_total},
              {"best_fixed_total_ns", best_fixed_total},
              {"wins_ge_margin", static_cast<double>(wins)},
              {"margin", margin}});

  // Gate 2: the warm tuned fast path vs a plain warm cache hit.
  runtime::Planner& planner = *opts.planner;
  planner.set_decision_table(
      std::make_shared<const tune::DecisionTable>(report.table));
  Params machine = opts.base;
  machine.P = opts.Ps.back();
  const std::size_t probe_bytes = opts.sizes.back();
  const runtime::PlanKey plain_key = runtime::PlanKey::broadcast(machine);
  (void)planner.plan(plain_key);  // warm both paths' cache entries
  (void)planner.plan_tuned(tune::Collective::kBroadcast, machine,
                           probe_bytes);

  std::vector<double> plain_ns, tuned_ns;
  for (int round = 0; round < kPlanRounds; ++round) {
    auto t0 = Clock::now();
    for (int i = 0; i < kPlanBatch; ++i) {
      ::benchmark::DoNotOptimize(planner.plan(plain_key));
    }
    auto t1 = Clock::now();
    for (int i = 0; i < kPlanBatch; ++i) {
      ::benchmark::DoNotOptimize(planner.plan_tuned(
          tune::Collective::kBroadcast, machine, probe_bytes));
    }
    auto t2 = Clock::now();
    plain_ns.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        kPlanBatch);
    tuned_ns.push_back(
        std::chrono::duration<double, std::nano>(t2 - t1).count() /
        kPlanBatch);
  }
  const double plain = median(std::move(plain_ns));
  const double tuned = median(std::move(tuned_ns));
  const double overhead = tuned / plain - 1.0;
  section("warm plan_tuned overhead");
  std::cout << "plan=" << plain << "ns plan_tuned=" << tuned
            << "ns overhead=" << overhead * 100 << "%\n";
  json.entry("warm_plan_overhead", {{"P", std::to_string(machine.P)}},
             {{"plan_ns", plain},
              {"plan_tuned_ns", tuned},
              {"overhead_frac", overhead}});

  const std::string path = json.write();
  std::cout << (path.empty() ? "FAILED to write bench json"
                             : "bench json: " + path)
            << "\n";

  // Persist the tuned table next to the json: the CI artifact a deploy
  // would install via Planner::set_decision_table at startup.
  const char* dir = std::getenv("LOGPC_BENCH_DIR");
  const std::string snap =
      (dir && *dir ? std::string(dir) + "/" : std::string()) +
      "decision_table.snap";
  report.table.save(snap);
  std::cout << "decision table snapshot: " << snap << " ("
            << report.table.size() << " entries)\n";

  int rc = 0;
  if (wins < min_wins) {
    std::cerr << "bench_tuning: FAIL — tuned selection beat the best fixed "
              << "schedule (" << best_fixed << ") by >= " << margin * 100
              << "% on only " << wins << " segment(s); need >= " << min_wins
              << "\n";
    rc = 1;
  }
  const double budget = env_double("LOGPC_TUNED_PLAN_OVERHEAD_MAX", 0.05);
  if (overhead > budget) {
    std::cerr << "bench_tuning: FAIL — warm plan_tuned overhead "
              << overhead * 100 << "% exceeds the " << budget * 100
              << "% budget\n";
    rc = 1;
  }
  if (rc == 0) {
    std::cout << "bench_tuning: OK — " << wins
              << " tuned wins >= " << margin * 100 << "%, warm overhead "
              << overhead * 100 << "% within " << budget * 100 << "%\n";
  }
  return rc;
}

}  // namespace
}  // namespace logpc::bench

int main() { return logpc::bench::run(); }
