# Empty dependencies file for test_single_item.
# This may be replaced when dependencies are built.
