#pragma once

#include <optional>
#include <string>
#include <vector>

#include "logp/time.hpp"

/// \file automaton.hpp
/// Legal receive words for block-cyclic continuous broadcast (Section 3.2).
///
/// Fix the postal model with latency L and a t-step optimal broadcast tree.
/// Under relative addressing, letter l (0 = 'a', 1 = 'b', ...) names the
/// leaf role at delay delays[l]; in the paper's setting the L letters are
/// the delays t, t-1, ..., t-L+1 (a = the item whose broadcast terminates
/// this step).  Receiving letter l at step s means receiving the item
/// s - L - delays[l].
///
/// A block of r processors serves an internal tree node of delay d (and
/// out-degree r).  Each member's reception pattern has period r: position 0
/// is the internal reception (delay d), positions 1..r-1 are the letters of
/// the block's word.  The member receives, at position p of cycle c, the
/// item (anchor + c*r + p) - L - delta_p where delta_p is the position's
/// role delay.  Two positions ever yield the same item iff their residues
/// (p - delta_p) mod r coincide - so the paper's correctness criterion
/// ("no processor receives an item twice"), which Section 3.2 encodes as a
/// path automaton, is exactly:
///
///     the r values (p - delta_p) mod r, p = 0..r-1, are pairwise distinct.
///
/// (For the paper's running example - L=3, t=7, the H5 block - this
/// criterion reproduces its legal word set {acab, abca, cccc, abbb}
/// verbatim; see the tests.)  Distinct residues also make the r residues a
/// complete system mod r, so every member receives *every* item exactly
/// once - correctness and coverage in one condition.

namespace logpc::bcast {

/// A receive word: letter indices into a WordContext's delay table.
/// Length r-1 for a block of size r.
using Word = std::vector<int>;

/// Renders a word as lower-case letters ("acab").  Letters beyond 'z' are
/// rendered as '?' (never happens for L <= 26).
[[nodiscard]] std::string word_to_string(const Word& w);

/// Parameters fixing the legality criterion for one block.
struct WordContext {
  std::vector<Time> delays;  ///< delays[l] = leaf delay named by letter l
  int r = 1;                 ///< block size = internal node out-degree
  Time d = 0;                ///< internal node delay (position-0 role)

  /// The paper's standard alphabet: L letters, letter l at delay t - l.
  static WordContext standard(Time t, Time L, int r, Time d);
};

/// True iff `w` (length r-1) gives pairwise-distinct residues together with
/// the internal position.
[[nodiscard]] bool word_is_legal(const WordContext& ctx, const Word& w);

/// All legal words for the context, in lexicographic order.  Exponential in
/// r - intended for tests, figures and small-instance search.
[[nodiscard]] std::vector<Word> enumerate_legal_words(const WordContext& ctx);

/// Finds a legal arrangement of exactly the given letter multiset
/// (counts[l] copies of letter l, summing to r-1), or nullopt.
[[nodiscard]] std::optional<Word> arrange_letters(const WordContext& ctx,
                                                  std::vector<int> counts);

/// Lemma 3.1's first word family, a^(L-2) (ca)^j b^m, in the paper's
/// letter naming (a = the item terminating this step).  Returns the word
/// of length (L-2) + 2j + m; the lemma asserts it is legal for the block
/// whose size makes the length come out to r - 1.  Requires L >= 2,
/// j, m >= 0.  (The lemma's remaining families b^(L-3) c*, etc., are
/// covered operationally by the solver; this one is the form the paper's
/// inductive composition leans on.)
[[nodiscard]] Word lemma31_word(Time L, int j, int m);

}  // namespace logpc::bcast
