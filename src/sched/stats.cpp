#include "sched/stats.hpp"

#include <algorithm>

namespace logpc {

std::vector<std::pair<int, int>> traffic_per_proc(const Schedule& s) {
  std::vector<std::pair<int, int>> counts(
      static_cast<std::size_t>(s.params().P), {0, 0});
  for (const auto& op : s.sends()) {
    ++counts[static_cast<std::size_t>(op.from)].first;
    ++counts[static_cast<std::size_t>(op.to)].second;
  }
  return counts;
}

ScheduleStats schedule_stats(const Schedule& s) {
  ScheduleStats st;
  st.makespan = s.makespan();
  st.messages = s.sends().size();

  const auto traffic = traffic_per_proc(s);
  for (const auto& [sends, recvs] : traffic) {
    st.max_sends_per_proc = std::max(st.max_sends_per_proc, sends);
    st.max_recvs_per_proc = std::max(st.max_recvs_per_proc, recvs);
  }

  const Time o = s.params().o;
  const int P = s.params().P;
  double busy_sum = 0.0;
  if (st.makespan > 0) {
    for (const auto& [sends, recvs] : traffic) {
      const Time busy = o * (sends + recvs);
      st.total_overhead += busy;
      const double frac =
          static_cast<double>(busy) / static_cast<double>(st.makespan);
      busy_sum += frac;
      st.max_busy_fraction = std::max(st.max_busy_fraction, frac);
    }
    st.avg_busy_fraction = busy_sum / P;
  }

  // Peak in flight: sweep wire intervals [start+o, start+o+L).
  std::vector<std::pair<Time, int>> events;
  events.reserve(2 * s.sends().size());
  for (const auto& op : s.sends()) {
    events.emplace_back(op.start + o, +1);
    events.emplace_back(op.start + o + s.params().L, -1);
  }
  std::sort(events.begin(), events.end());
  int depth = 0;
  for (const auto& [t, d] : events) {
    depth += d;
    st.peak_in_flight = std::max(st.peak_in_flight, depth);
  }

  for (const auto& op : s.sends()) {
    const int dist = ((op.to - op.from) % P + P) % P;
    ++st.distance_histogram[dist];
  }
  return st;
}

}  // namespace logpc
