# Empty dependencies file for summation_pipeline.
# This may be replaced when dependencies are built.
