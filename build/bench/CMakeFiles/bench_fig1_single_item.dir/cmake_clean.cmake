file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_single_item.dir/bench_fig1_single_item.cpp.o"
  "CMakeFiles/bench_fig1_single_item.dir/bench_fig1_single_item.cpp.o.d"
  "bench_fig1_single_item"
  "bench_fig1_single_item.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_single_item.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
