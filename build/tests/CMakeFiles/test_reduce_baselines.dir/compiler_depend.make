# Empty compiler generated dependencies file for test_reduce_baselines.
# This may be replaced when dependencies are built.
