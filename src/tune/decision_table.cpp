#include "tune/decision_table.hpp"

#include <bit>
#include <fstream>
#include <stdexcept>

namespace logpc::tune {

namespace {

// Same wire idiom as the plan snapshot (runtime/snapshot.cpp): versioned
// magic header, then little-endian i64 fields.  v1 writes one record per
// entry: collective, P, size_class, problem, segments, clusters, cross
// (L, o, g), then win/runner-up medians as nanosecond integers (the
// sub-nanosecond part of a median is noise, not signal).
constexpr char kHeader[] = "logpc-tunesnap v1\n";
constexpr std::size_t kHeaderLen = 18;

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("decision table snapshot: " + what);
}

void put_i64(std::ostream& os, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((u >> (8 * i)) & 0xff);
  }
  os.write(bytes, 8);
}

std::int64_t get_i64(std::istream& is) {
  char bytes[8];
  if (!is.read(bytes, 8)) fail("truncated input");
  std::uint64_t u = 0;
  for (int i = 0; i < 8; ++i) {
    u |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i]))
         << (8 * i);
  }
  return static_cast<std::int64_t>(u);
}

}  // namespace

std::string_view collective_name(Collective c) {
  switch (c) {
    case Collective::kBroadcast:
      return "broadcast";
  }
  return "unknown";
}

int size_class_of(std::size_t bytes) {
  if (bytes <= 1) return 0;
  return static_cast<int>(std::bit_width(bytes - 1));
}

std::size_t size_class_bytes(int size_class) {
  if (size_class < 0 || size_class > 63) {
    throw std::invalid_argument("size_class_bytes: class outside [0, 63]");
  }
  return std::size_t{1} << size_class;
}

void DecisionTable::set(const DecisionKey& key, const Decision& decision) {
  if (static_cast<int>(key.collective) >= kNumCollectives) {
    throw std::invalid_argument("DecisionTable: unknown collective");
  }
  if (key.P < 1) throw std::invalid_argument("DecisionTable: P must be >= 1");
  if (key.size_class < 0 || key.size_class > 63) {
    throw std::invalid_argument(
        "DecisionTable: size_class outside [0, 63]");
  }
  if (static_cast<int>(decision.problem) >= runtime::kNumProblems) {
    throw std::invalid_argument("DecisionTable: unknown problem");
  }
  if (decision.segments < 1) {
    throw std::invalid_argument("DecisionTable: segments must be >= 1");
  }
  if (decision.win_ns < 0 || decision.runner_up_ns < 0) {
    throw std::invalid_argument("DecisionTable: negative timing");
  }
  const bool hier =
      decision.problem == runtime::Problem::kHierarchicalBroadcast;
  if (hier && (decision.clusters < 2 || decision.clusters > key.P)) {
    throw std::invalid_argument(
        "DecisionTable: hierarchical winner needs clusters in [2, P]");
  }
  if (!hier && (decision.clusters != 0 || decision.cross_L != 0 ||
                decision.cross_o != 0 || decision.cross_g != 0)) {
    throw std::invalid_argument(
        "DecisionTable: topology fields on a non-hierarchical winner");
  }
  entries_[key] = decision;
}

const Decision* DecisionTable::find(Collective collective, int P,
                                    std::size_t bytes) const {
  const int wanted = size_class_of(bytes);
  // Candidates straddle `wanted` within the same (collective, P): the
  // first tuned class at or above it, and the last below it.
  const DecisionKey probe{collective, P, wanted};
  const auto at_or_above = entries_.lower_bound(probe);
  const Decision* above = nullptr;
  int above_class = 0;
  if (at_or_above != entries_.end() &&
      at_or_above->first.collective == collective &&
      at_or_above->first.P == P) {
    above = &at_or_above->second;
    above_class = at_or_above->first.size_class;
    if (above_class == wanted) return above;
  }
  const Decision* below = nullptr;
  int below_class = 0;
  if (at_or_above != entries_.begin()) {
    const auto prev = std::prev(at_or_above);
    if (prev->first.collective == collective && prev->first.P == P) {
      below = &prev->second;
      below_class = prev->first.size_class;
    }
  }
  if (below && above) {
    // Ties snap down: the smaller class's winner was measured closer to
    // this payload's regime more often than not.
    return (wanted - below_class) <= (above_class - wanted) ? below : above;
  }
  return below ? below : above;
}

const Decision* DecisionTable::find_class(const DecisionKey& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void DecisionTable::save(std::ostream& os) const {
  os.write(kHeader, kHeaderLen);
  put_i64(os, static_cast<std::int64_t>(entries_.size()));
  for (const auto& [key, d] : entries_) {
    put_i64(os, static_cast<std::int64_t>(key.collective));
    put_i64(os, key.P);
    put_i64(os, key.size_class);
    put_i64(os, static_cast<std::int64_t>(d.problem));
    put_i64(os, d.segments);
    put_i64(os, d.clusters);
    put_i64(os, d.cross_L);
    put_i64(os, d.cross_o);
    put_i64(os, d.cross_g);
    put_i64(os, static_cast<std::int64_t>(d.win_ns));
    put_i64(os, static_cast<std::int64_t>(d.runner_up_ns));
  }
  if (!os) throw std::runtime_error("decision table snapshot: write failed");
}

void DecisionTable::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    throw std::runtime_error("decision table snapshot: cannot write " + path);
  }
  save(os);
  os.flush();
  if (!os) {
    throw std::runtime_error("decision table snapshot: write failed: " + path);
  }
}

DecisionTable DecisionTable::load(std::istream& is) {
  char header[kHeaderLen];
  if (!is.read(header, kHeaderLen)) fail("bad header");
  if (std::string(header, kHeaderLen) != std::string(kHeader, kHeaderLen)) {
    fail("bad header");
  }
  const std::int64_t count = get_i64(is);
  if (count < 0) fail("negative entry count");
  DecisionTable table;
  for (std::int64_t i = 0; i < count; ++i) {
    DecisionKey key;
    const std::int64_t collective = get_i64(is);
    if (collective < 0 || collective >= kNumCollectives) {
      fail("unknown collective");
    }
    key.collective = static_cast<Collective>(collective);
    key.P = static_cast<int>(get_i64(is));
    key.size_class = static_cast<int>(get_i64(is));
    Decision d;
    const std::int64_t problem = get_i64(is);
    if (problem < 0 || problem >= runtime::kNumProblems) {
      fail("unknown problem id");
    }
    d.problem = static_cast<runtime::Problem>(problem);
    d.segments = static_cast<std::int32_t>(get_i64(is));
    d.clusters = static_cast<std::int32_t>(get_i64(is));
    d.cross_L = get_i64(is);
    d.cross_o = get_i64(is);
    d.cross_g = get_i64(is);
    d.win_ns = static_cast<double>(get_i64(is));
    d.runner_up_ns = static_cast<double>(get_i64(is));
    try {
      // Reuse set()'s validation: a corrupt record must not enter the
      // table under a plausible key.
      table.set(key, d);
    } catch (const std::invalid_argument& e) {
      fail(std::string("bad entry: ") + e.what());
    }
  }
  return table;
}

DecisionTable DecisionTable::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("decision table snapshot: cannot read " + path);
  }
  return load(is);
}

}  // namespace logpc::tune
