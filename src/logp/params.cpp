#include "logp/params.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace logpc {

void Params::require_valid() const {
  if (!valid()) {
    throw std::invalid_argument("invalid LogP parameters: " + to_string());
  }
}

std::string Params::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Params& p) {
  return os << "LogP(P=" << p.P << ", L=" << p.L << ", o=" << p.o
            << ", g=" << p.g << ")";
}

}  // namespace logpc
