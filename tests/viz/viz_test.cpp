#include <gtest/gtest.h>

#include "bcast/single_item.hpp"
#include "bcast/kitem_buffered.hpp"
#include "viz/digraph.hpp"
#include "viz/table.hpp"
#include "viz/timeline.hpp"
#include "viz/tree_render.hpp"

namespace logpc::viz {
namespace {

using bcast::BroadcastTree;

TEST(TreeRender, Figure1TreeContainsAllLabels) {
  const auto tree = BroadcastTree::optimal(Params{8, 6, 2, 4}, 8);
  const std::string out = render_tree(tree);
  for (const std::string_view label : {"0", "10", "14", "18", "20", "22",
                                       "24"}) {
    EXPECT_NE(out.find(label), std::string::npos) << label;
  }
  // One line per node.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 8);
}

TEST(TreeRender, DegreeSummary) {
  const auto tree = BroadcastTree::optimal(Params::postal(9, 3), 9);
  EXPECT_EQ(degree_summary(tree), "degrees: 6x0 1x1 1x2 1x5");
}

TEST(Timeline, MarksOverheadsAtTheRightCycles) {
  Schedule s(Params{2, 6, 2, 4}, 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);
  const std::string out = render_timeline(s);
  const auto lines = [&] {
    std::vector<std::string> v;
    std::size_t pos = 0;
    while (pos < out.size()) {
      const auto nl = out.find('\n', pos);
      v.push_back(out.substr(pos, nl - pos));
      pos = nl + 1;
    }
    return v;
  }();
  ASSERT_EQ(lines.size(), 3u);  // header + 2 processors
  // P0 busy sending cycles [0,2); P1 receiving [8,10).
  EXPECT_EQ(lines[1].substr(6, 2), "ss");
  EXPECT_EQ(lines[2].substr(6 + 8, 2), "rr");
}

TEST(Timeline, ZeroOverheadUsesInstantMarks) {
  Schedule s(Params::postal(2, 3), 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);
  const std::string out = render_timeline(s);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('v'), std::string::npos);
}

TEST(Table, ShowsOneBasedItemsAndDelayedBrackets) {
  Schedule s(Params::postal(2, 2), 2);
  s.add_initial(0, 0, 0);
  s.add_initial(1, 0, 0);
  s.add_send(0, 0, 1, 0);                 // item 1 at t=2
  s.add_send(SendOp{1, 0, 1, 1, 4});      // item 2 arrives 3, received 4
  const std::string out = reception_table(s);
  EXPECT_NE(out.find("(1)"), std::string::npos);  // initial placement
  EXPECT_NE(out.find("[2]"), std::string::npos);  // delayed reception
  EXPECT_NE(out.find("P0"), std::string::npos);
  EXPECT_NE(out.find("P1"), std::string::npos);
}

TEST(Table, Figure5StyleTableRenders) {
  const auto r = bcast::kitem_buffered(14, 3, 14);
  const std::string out = reception_table(r.schedule);
  // 14 processors + header rows; the last item (14) appears.
  EXPECT_NE(out.find("14"), std::string::npos);
  EXPECT_GT(std::count(out.begin(), out.end(), '\n'), 14);
}

TEST(Digraph, RendersFigure3Shape) {
  const auto res = bcast::plan_continuous(3, 11);
  ASSERT_EQ(res.status, bcast::SolveStatus::kSolved);
  const auto g = bcast::block_digraph(*res.plan);
  const std::string out = render_digraph(g);
  EXPECT_NE(out.find("source"), std::string::npos);
  EXPECT_NE(out.find("recv-only"), std::string::npos);
  EXPECT_NE(out.find("==>"), std::string::npos);  // active edges
  EXPECT_NE(out.find("[9]"), std::string::npos);  // the largest block
}

}  // namespace
}  // namespace logpc::viz
