#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bcast/automaton.hpp"

/// \file words.hpp
/// Global word assignment for block-cyclic continuous broadcast.
///
/// One word per block must be chosen so that (a) every word is legal for
/// its block (automaton.hpp) and (b) the words together consume, at every
/// time step, exactly the per-step leaf multiset of the broadcast tree
/// (Section 3.2's first restriction), with one leaf left over for the
/// receive-only processor.  The paper solves this by hand via the word
/// forms of Lemma 3.1; we solve it by budgeted backtracking, which finds
/// the same solutions and also *proves* infeasibility on small instances
/// (e.g. L = 2, Theorem 3.4, and the paper's L = 4, t = 8 remark) when the
/// search space is exhausted.

namespace logpc::bcast {

/// One block to be assigned a word: the internal tree node's out-degree
/// (block size) and delay.
struct BlockSpec {
  int r = 1;
  Time d = 0;
};

/// A complete assignment: words aligned with the input block list, plus the
/// letter the receive-only processor consumes every step.
struct WordAssignment {
  std::vector<Word> words;
  int receive_only_letter = 0;
};

/// Outcome of the search: found, proved infeasible (search space exhausted),
/// or budget ran out first.
enum class SolveStatus { kSolved, kInfeasible, kBudgetExhausted };

struct SolveResult {
  SolveStatus status = SolveStatus::kInfeasible;
  std::optional<WordAssignment> assignment;  ///< set iff kSolved
  std::uint64_t nodes_explored = 0;
};

/// Searches for a word assignment.
///
/// Waits (Section 3.5 / Theorem 3.8): with max_wait > 0, each word position
/// may also use a *buffered* variant of a letter - the arrival sits in the
/// receive buffer for w extra steps before being received, which shifts the
/// position's effective role delay to delays[l] + w.  Buffered variants
/// expand the alphabet: extended letter id e = l + w * letter_count
/// (0 <= w <= max_wait).  Supplies remain per *base* letter; the
/// receive-only processor always consumes at wait 0.
///
/// \param letter_delays  delay named by each base letter (the paper's
///                       standard alphabet is t, t-1, ..., t-L+1; pruned
///                       trees for the Theorem 3.5 construction may use
///                       others)
/// \param blocks         one entry per internal tree node
/// \param supplies       per-step leaf count per base letter, consumed
///                       exactly, with one unit left for the receive-only
///                       processor
/// \param max_wait       maximum buffering wait per reception (0 = strict
///                       model)
/// \param budget         maximum DFS nodes before giving up
[[nodiscard]] SolveResult assign_words(const std::vector<Time>& letter_delays,
                                       const std::vector<BlockSpec>& blocks,
                                       std::vector<int> supplies,
                                       int max_wait = 0,
                                       std::uint64_t budget = 20'000'000);

}  // namespace logpc::bcast
