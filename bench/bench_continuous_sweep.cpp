/// Experiments T33/T34 - continuous broadcast delays: Theorem 3.3 (optimal
/// delay L + B(P-1) for 3 <= L <= 10), Theorem 3.4/3.5 (L = 2 needs and
/// gets exactly one extra step), the paper's L = 4, t = 8 remark and the
/// t = 2L pattern behind it, and the solver's search effort.

#include "bench_util.hpp"

#include "search/continuous_search.hpp"
#include "sched/metrics.hpp"
#include "validate/checker.hpp"

namespace {

using namespace logpc;
using logpc::bench::Table;

void report() {
  logpc::bench::section("Theorem 3.3: delay L + t achieved (exact P - 1 = P(t))");
  Table t({"L", "t", "P-1", "delay", "optimal", "search nodes", "status"});
  for (const Time L : {1, 2, 3, 4, 5, 6, 8, 10}) {
    const Fib fib(L);
    for (Time step = L + 2; step <= L + 8; ++step) {
      if (fib.f(step) > 500) break;
      const auto res = bcast::plan_continuous(L, step);
      std::string status;
      Time delay = -1;
      switch (res.status) {
        case bcast::SolveStatus::kSolved:
          delay = res.plan->delay();
          status = "solved";
          break;
        case bcast::SolveStatus::kInfeasible:
          status = "infeasible (proved)";
          break;
        case bcast::SolveStatus::kBudgetExhausted:
          status = "budget";
          break;
      }
      t.row(L, step, fib.f(step), delay < 0 ? "-" : std::to_string(delay),
            L + step, res.nodes_explored, status);
    }
  }
  t.print();
  std::cout << "holes: L = 2 everywhere (Theorem 3.4) and t = 2L for even L\n"
               "(the paper remarks on L = 4, t = 8; the search shows its\n"
               "siblings at L = 6, 8, 10).\n";

  logpc::bench::section(
      "Theorem 3.5: one extra step repairs every hole (pruned trees)");
  Table s({"L", "t", "delay achieved", "L+t+1", "valid", "k=5 completion"});
  struct Hole {
    Time L;
    Time t;
  };
  for (const auto& h : {Hole{2, 4}, Hole{2, 6}, Hole{2, 8}, Hole{4, 8},
                        Hole{6, 12}, Hole{8, 16}}) {
    const Fib fib(h.L);
    const auto res = logpc::search::plan_with_slack(
        h.L, static_cast<int>(fib.f(h.t)), 1);
    if (res.status != bcast::SolveStatus::kSolved) {
      s.row(h.L, h.t, "FAILED", h.L + h.t + 1, "-", "-");
      continue;
    }
    const Schedule sched = bcast::emit_k_items(*res.plan, 5);
    s.row(h.L, h.t, res.plan->delay(), h.L + h.t + 1,
          logpc::bench::ok(validate::is_valid(sched)),
          completion_time(sched));
  }
  s.print();

  logpc::bench::section("generalization: arbitrary receiver counts m");
  Table g({"L", "m range", "slack 0", "slack 1", "slack >1 or fail"});
  for (const Time L : {1, 2, 3, 4, 5}) {
    int s0 = 0;
    int s1 = 0;
    int rest = 0;
    for (int m = 1; m <= 40; ++m) {
      const auto res = logpc::search::best_continuous_plan(L, m);
      if (res.status != bcast::SolveStatus::kSolved) {
        ++rest;
        continue;
      }
      const Time optimal = bcast::B_of_P(Params::postal(m, L), m) + L;
      const Time slack = res.plan->delay() - optimal;
      if (slack == 0) {
        ++s0;
      } else if (slack == 1) {
        ++s1;
      } else {
        ++rest;
      }
    }
    g.row(L, "1..40", s0, s1, rest);
  }
  g.print();
}

void BM_PlanContinuous(benchmark::State& state) {
  const Time L = state.range(0);
  const Time t = state.range(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcast::plan_continuous(L, t));
  }
}
BENCHMARK(BM_PlanContinuous)->Args({3, 9})->Args({5, 12})->Args({10, 22});

void BM_PlanWithSlackL2(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(logpc::search::plan_with_slack(2, 13, 1));
  }
}
BENCHMARK(BM_PlanWithSlackL2);

}  // namespace

LOGPC_BENCH_MAIN(report)
