/// Experiment A2 - ablation: the block-cyclic construction vs the greedy
/// scheduler vs the true optimum from exhaustive search, on instances small
/// enough to search.  Certifies (a) the Theorem 3.1 bound is sometimes
/// loose for single-sending schedules (the k* endgame gap), (b) our
/// construction matches the single-sending optimum, (c) greedy is a usable
/// but weaker fallback.

#include "bench_util.hpp"

#include "bcast/kitem.hpp"
#include "bcast/kitem_buffered.hpp"
#include "bcast/three_phase.hpp"
#include "search/bcast_search.hpp"
#include "sched/metrics.hpp"

namespace {

using namespace logpc;
using logpc::bench::Table;

void report() {
  logpc::bench::section(
      "small instances: exhaustive optimum vs constructions");
  Table t({"P", "L", "k", "Thm3.1 lb", "true optimum", "ss lb",
           "block-cyclic", "greedy", "buffered"});
  struct Case {
    int P;
    Time L;
    int k;
  };
  for (const auto& c :
       {Case{2, 2, 2}, Case{3, 1, 2}, Case{3, 2, 2}, Case{4, 1, 2},
        Case{4, 2, 2}, Case{5, 1, 2}, Case{5, 2, 2}, Case{3, 3, 2},
        Case{4, 1, 3}, Case{3, 1, 3}}) {
    const auto bounds = bcast::kitem_bounds(c.P, c.L, c.k);
    const auto opt = logpc::search::min_completion(c.P, c.L, c.k);
    const auto ours = bcast::kitem_broadcast(c.P, c.L, c.k);
    const Time greedy = completion_time(bcast::kitem_greedy(c.P, c.L, c.k));
    const auto buffered = bcast::kitem_buffered(c.P, c.L, c.k);
    t.row(c.P, c.L, c.k, bounds.general_lower,
          opt ? std::to_string(*opt) : std::string("budget"),
          bounds.single_sending_lower, ours.completion, greedy,
          buffered.completion);
  }
  t.print();
  std::cout << "reading: the true optimum can dip below the single-sending\n"
               "lower bound (multi-sending endgames, Theorem 3.2); our\n"
               "block-cyclic schedule is optimal among single-sending\n"
               "strategies, and the buffered variant meets that bound on\n"
               "every instance.\n";

  logpc::bench::section(
      "structure ablation: full-tree vs greedy vs naive three-phase endgame");
  Table g({"P", "L", "k", "full-tree (ours)", "greedy", "naive 3-phase",
           "Thm3.6 ub"});
  for (const auto& c :
       {Case{10, 3, 8}, Case{22, 2, 8}, Case{42, 3, 12}, Case{17, 4, 6}}) {
    const auto ours = bcast::kitem_broadcast(c.P, c.L, c.k);
    const Time greedy = completion_time(bcast::kitem_greedy(c.P, c.L, c.k));
    const auto three = bcast::kitem_three_phase(c.P, c.L, c.k);
    g.row(c.P, c.L, c.k, ours.completion, greedy, three.completion,
          ours.bounds.single_sending_upper);
  }
  g.print();
  std::cout << "reading: sizing blocks by the full t-step tree (so leaf\n"
               "deliveries ARE the endgame) is what makes B+L+k-1 work;\n"
               "a tree phase that saturates every send port leaves the\n"
               "endgame to receiver relays and blows through Thm 3.6's\n"
               "bound - exactly why the paper's Section 3.4 assignment is\n"
               "so intricate.\n";
}

void BM_ExhaustiveSearch(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(logpc::search::min_completion(4, 2, 2));
  }
}
BENCHMARK(BM_ExhaustiveSearch);

}  // namespace

LOGPC_BENCH_MAIN(report)
