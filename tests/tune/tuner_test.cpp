#include "tune/tuner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/communicator.hpp"
#include "tune/decision_table.hpp"

namespace logpc::tune {
namespace {

using runtime::PlanKey;
using runtime::Planner;
using runtime::Problem;

const Params kMachine{8, 4, 1, 2};

Decision tree_decision(Problem p, double win = 100, double runner = 200) {
  Decision d;
  d.problem = p;
  d.win_ns = win;
  d.runner_up_ns = runner;
  return d;
}

Decision segmented_decision(std::int32_t k) {
  Decision d;
  d.problem = Problem::kKItemBroadcast;
  d.segments = k;
  d.win_ns = 100;
  return d;
}

Decision hier_decision(std::int32_t clusters) {
  Decision d;
  d.problem = Problem::kHierarchicalBroadcast;
  d.clusters = clusters;
  d.cross_L = 16;
  d.cross_o = 3;
  d.cross_g = 10;
  d.win_ns = 100;
  return d;
}

TEST(SizeClass, CeilLog2WithZeroAndOneInClassZero) {
  EXPECT_EQ(size_class_of(0), 0);
  EXPECT_EQ(size_class_of(1), 0);
  EXPECT_EQ(size_class_of(2), 1);
  EXPECT_EQ(size_class_of(3), 2);
  EXPECT_EQ(size_class_of(4), 2);
  EXPECT_EQ(size_class_of(4096), 12);
  EXPECT_EQ(size_class_of(4097), 13);
  EXPECT_EQ(size_class_bytes(12), 4096u);
  EXPECT_THROW((void)size_class_bytes(-1), std::invalid_argument);
  EXPECT_THROW((void)size_class_bytes(64), std::invalid_argument);
}

TEST(DecisionTable, FindSnapsToTheNearestTunedClass) {
  DecisionTable table;
  table.set({Collective::kBroadcast, 8, 8},
            tree_decision(Problem::kBroadcast));
  table.set({Collective::kBroadcast, 8, 16},
            segmented_decision(4));

  // Exact classes.
  EXPECT_EQ(table.find(Collective::kBroadcast, 8, 256)->problem,
            Problem::kBroadcast);
  EXPECT_EQ(table.find(Collective::kBroadcast, 8, 65536)->problem,
            Problem::kKItemBroadcast);
  // Below the grid snaps up to the smallest tuned class...
  EXPECT_EQ(table.find(Collective::kBroadcast, 8, 1)->problem,
            Problem::kBroadcast);
  // ...above snaps down to the largest.
  EXPECT_EQ(table.find(Collective::kBroadcast, 8, 1 << 24)->problem,
            Problem::kKItemBroadcast);
  // Class 11 is 3 away from 8 and 5 from 16: snaps to 8.
  EXPECT_EQ(table.find(Collective::kBroadcast, 8, 2048)->problem,
            Problem::kBroadcast);
  // Class 12 ties (4 from each side): ties snap down.
  EXPECT_EQ(table.find(Collective::kBroadcast, 8, 4096)->problem,
            Problem::kBroadcast);
  // Class 13 is closer to 16.
  EXPECT_EQ(table.find(Collective::kBroadcast, 8, 8192)->problem,
            Problem::kKItemBroadcast);

  // Untuned machine size: no decision at all.
  EXPECT_EQ(table.find(Collective::kBroadcast, 16, 256), nullptr);
  EXPECT_EQ(table.find_class({Collective::kBroadcast, 8, 9}), nullptr);
  EXPECT_NE(table.find_class({Collective::kBroadcast, 8, 8}), nullptr);
}

TEST(DecisionTable, SetRejectsIllFormedEntries) {
  DecisionTable table;
  const DecisionKey key{Collective::kBroadcast, 8, 8};
  EXPECT_THROW(table.set({Collective::kBroadcast, 0, 8},
                         tree_decision(Problem::kBroadcast)),
               std::invalid_argument);
  EXPECT_THROW(table.set({Collective::kBroadcast, 8, 64},
                         tree_decision(Problem::kBroadcast)),
               std::invalid_argument);

  Decision zero_segments = segmented_decision(0);
  EXPECT_THROW(table.set(key, zero_segments), std::invalid_argument);

  Decision negative = tree_decision(Problem::kBroadcast, -1);
  EXPECT_THROW(table.set(key, negative), std::invalid_argument);

  // Hierarchical winners need a sane cluster count...
  EXPECT_THROW(table.set(key, hier_decision(1)), std::invalid_argument);
  EXPECT_THROW(table.set(key, hier_decision(9)), std::invalid_argument);
  // ...and only hierarchical winners carry topology.
  Decision stray = tree_decision(Problem::kBinomialBroadcast);
  stray.clusters = 2;
  EXPECT_THROW(table.set(key, stray), std::invalid_argument);

  EXPECT_TRUE(table.empty());
  EXPECT_NO_THROW(table.set(key, hier_decision(2)));
  EXPECT_EQ(table.size(), 1u);
}

TEST(DecisionTable, SnapshotRoundTripsExactly) {
  DecisionTable table;
  table.set({Collective::kBroadcast, 4, 8},
            tree_decision(Problem::kBinomialBroadcast, 123, 456));
  table.set({Collective::kBroadcast, 8, 12}, segmented_decision(4));
  table.set({Collective::kBroadcast, 8, 18}, hier_decision(2));

  std::stringstream stream;
  table.save(stream);
  const DecisionTable loaded = DecisionTable::load(stream);
  EXPECT_EQ(loaded, table);
}

TEST(DecisionTable, LoadRejectsCorruptSnapshots) {
  std::stringstream bad_header("not a decision table, definitely");
  EXPECT_THROW((void)DecisionTable::load(bad_header), std::invalid_argument);

  DecisionTable table;
  table.set({Collective::kBroadcast, 8, 8},
            tree_decision(Problem::kBroadcast));
  std::stringstream stream;
  table.save(stream);
  std::string bytes = stream.str();

  // Truncation.
  std::stringstream truncated(bytes.substr(0, bytes.size() - 4));
  EXPECT_THROW((void)DecisionTable::load(truncated), std::invalid_argument);

  // A corrupt record must be rejected by re-validation, not admitted.
  std::string corrupt = bytes;
  corrupt[corrupt.size() - 60] = '\x7f';  // clobbers a field of the record
  std::stringstream corrupted(corrupt);
  EXPECT_THROW((void)DecisionTable::load(corrupted), std::invalid_argument);
}

TEST(AutoTune, RejectsIllFormedGrids) {
  TunerOptions empty;
  empty.Ps.clear();
  EXPECT_THROW((void)auto_tune(empty), std::invalid_argument);

  TunerOptions tiny;
  tiny.Ps = {1};
  EXPECT_THROW((void)auto_tune(tiny), std::invalid_argument);

  TunerOptions no_trials;
  no_trials.trials = 0;
  EXPECT_THROW((void)auto_tune(no_trials), std::invalid_argument);

  TunerOptions bad_seg;
  bad_seg.min_segments = 1;
  EXPECT_THROW((void)auto_tune(bad_seg), std::invalid_argument);
}

TEST(AutoTune, TinyGridProducesADecisionPerSegment) {
  TunerOptions opts;
  opts.Ps = {4};
  opts.sizes = {64, 4096};
  opts.trials = 3;
  opts.warmup = 1;
  opts.clusters = 2;
  opts.planner = std::make_shared<Planner>();

  const TuneReport report = auto_tune(opts);
  ASSERT_EQ(report.segments.size(), 2u);
  EXPECT_EQ(report.table.size(), 2u);
  for (const SegmentResult& seg : report.segments) {
    EXPECT_EQ(seg.P, 4);
    EXPECT_EQ(seg.size_class, size_class_of(seg.bytes));
    // optimal + 3 trees + hierarchical + segmented.
    ASSERT_EQ(seg.timings.size(), 6u);
    for (std::size_t i = 1; i < seg.timings.size(); ++i) {
      EXPECT_LE(seg.timings[i - 1].median_ns, seg.timings[i].median_ns);
    }
    // The table holds exactly the winner the segment reports.
    const Decision* d = report.table.find_class(
        {Collective::kBroadcast, seg.P, seg.size_class});
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(*d, seg.winner);
    EXPECT_EQ(d->problem, seg.timings.front().problem);
    EXPECT_GT(d->win_ns, 0);
    EXPECT_GE(d->runner_up_ns, d->win_ns);
  }
}

TEST(PlannerTuning, TunedKeyRoutesEachWinnerFamily) {
  Planner planner;
  // No table installed: the paper's optimal tree.
  EXPECT_EQ(planner.tuned_key(Collective::kBroadcast, kMachine, 256, 3),
            PlanKey::broadcast(kMachine, 3));

  auto table = std::make_shared<DecisionTable>();
  table->set({Collective::kBroadcast, 8, 8},
             tree_decision(Problem::kChainBroadcast));
  table->set({Collective::kBroadcast, 8, 12}, segmented_decision(4));
  table->set({Collective::kBroadcast, 8, 18}, hier_decision(2));
  planner.set_decision_table(table);
  EXPECT_EQ(planner.decision_table(), table);

  // Tree winner, root preserved.
  EXPECT_EQ(planner.tuned_key(Collective::kBroadcast, kMachine, 200, 3),
            PlanKey::make(Problem::kChainBroadcast, kMachine, 1, 3));
  // Segmented winner: the kitem spelling (root normalizes to 0 there).
  EXPECT_EQ(planner.tuned_key(Collective::kBroadcast, kMachine, 4096, 3),
            PlanKey::segmented_broadcast(kMachine, 4));
  // Hierarchical winner rebuilt from the recorded topology.
  EXPECT_EQ(planner.tuned_key(Collective::kBroadcast, kMachine, 200000, 3),
            PlanKey::make(Problem::kHierarchicalBroadcast, kMachine, 1, 3, 0,
                          2, 16, 3, 10));
  // Untuned machine size falls back to the optimal tree.
  const Params other{16, 4, 1, 2};
  EXPECT_EQ(planner.tuned_key(Collective::kBroadcast, other, 4096, 0),
            PlanKey::broadcast(other));

  // plan_tuned resolves the same key through the cache.
  const runtime::PlanPtr plan =
      planner.plan_tuned(Collective::kBroadcast, kMachine, 200, 3);
  EXPECT_EQ(plan->key, PlanKey::make(Problem::kChainBroadcast, kMachine, 1, 3));

  // Clearing the table restores the default path.
  planner.set_decision_table(nullptr);
  EXPECT_EQ(planner.decision_table(), nullptr);
  EXPECT_EQ(planner.tuned_key(Collective::kBroadcast, kMachine, 4096, 0),
            PlanKey::broadcast(kMachine));
}

TEST(PlannerTuning, WarmMemoInvalidatesWhenTheTableChanges) {
  // plan_tuned memoizes warm (table, machine, size-class) bindings; a
  // replaced or cleared table must stop those entries matching, not keep
  // serving the old winner.
  Planner planner;
  auto chain = std::make_shared<DecisionTable>();
  chain->set({Collective::kBroadcast, 8, 8},
             tree_decision(Problem::kChainBroadcast));
  planner.set_decision_table(chain);
  for (int i = 0; i < 3; ++i) {  // repeat -> the memoized fast path
    EXPECT_EQ(planner.plan_tuned(Collective::kBroadcast, kMachine, 200)->key,
              PlanKey::make(Problem::kChainBroadcast, kMachine));
  }

  auto binary = std::make_shared<DecisionTable>();
  binary->set({Collective::kBroadcast, 8, 8},
              tree_decision(Problem::kBinaryBroadcast));
  planner.set_decision_table(binary);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(planner.plan_tuned(Collective::kBroadcast, kMachine, 200)->key,
              PlanKey::make(Problem::kBinaryBroadcast, kMachine));
  }

  planner.set_decision_table(nullptr);
  EXPECT_EQ(planner.plan_tuned(Collective::kBroadcast, kMachine, 200)->key,
            PlanKey::broadcast(kMachine));
}

TEST(PlannerTuning, ConcurrentPlanTunedIsRaceFree) {
  // Readers race the memo's CAS publish and table swaps: every result
  // must be a plan some installed table (or the cleared state) selects —
  // the TSan target for the lock-free tuned path.
  Planner planner;
  auto chain = std::make_shared<DecisionTable>();
  chain->set({Collective::kBroadcast, 8, 8},
             tree_decision(Problem::kChainBroadcast));
  auto binary = std::make_shared<DecisionTable>();
  binary->set({Collective::kBroadcast, 8, 8},
              tree_decision(Problem::kBinaryBroadcast));

  const std::vector<PlanKey> valid{
      PlanKey::make(Problem::kChainBroadcast, kMachine),
      PlanKey::make(Problem::kBinaryBroadcast, kMachine),
      PlanKey::broadcast(kMachine)};
  std::atomic<bool> bad{false};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 400; ++i) {
        const runtime::PlanPtr p =
            planner.plan_tuned(Collective::kBroadcast, kMachine,
                               static_cast<std::size_t>(100 + i % 3));
        if (p == nullptr ||
            std::find(valid.begin(), valid.end(), p->key) == valid.end()) {
          bad.store(true);
        }
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    planner.set_decision_table(chain);
    planner.set_decision_table(binary);
    planner.set_decision_table(nullptr);
  }
  for (std::thread& th : readers) th.join();
  EXPECT_FALSE(bad.load());
}

class TunedBroadcastRun : public ::testing::Test {
 protected:
  std::vector<std::byte> payload(std::size_t n) const {
    std::vector<std::byte> out(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = static_cast<std::byte>((i * 29 + 5) & 0xff);
    }
    return out;
  }

  void expect_delivers(const api::Communicator& comm,
                       const std::vector<std::byte>& bytes, ProcId root) {
    const exec::ExecReport report = comm.run_broadcast_tuned(bytes, root);
    const exec::Bytes want(bytes.begin(), bytes.end());
    for (ProcId p = 0; p < comm.size(); ++p) {
      EXPECT_EQ(report.item_at(p, 0), want) << "rank " << p;
    }
  }
};

TEST_F(TunedBroadcastRun, DeliversByteExactUnderEveryWinnerFamily) {
  for (const Decision& d :
       {tree_decision(Problem::kBinomialBroadcast), segmented_decision(3),
        hier_decision(2)}) {
    auto planner = std::make_shared<Planner>();
    auto table = std::make_shared<DecisionTable>();
    // One decision covering every size via snapping.
    table->set({Collective::kBroadcast, 8, 10}, d);
    planner->set_decision_table(table);
    const api::Communicator comm(kMachine, planner);
    expect_delivers(comm, payload(777), 0);
    expect_delivers(comm, payload(777), 5);  // non-zero root relabels
  }
}

TEST_F(TunedBroadcastRun, SegmentedWinnerHandlesEmptyPayloads) {
  auto planner = std::make_shared<Planner>();
  auto table = std::make_shared<DecisionTable>();
  table->set({Collective::kBroadcast, 8, 10}, segmented_decision(4));
  planner->set_decision_table(table);
  const api::Communicator comm(kMachine, planner);
  expect_delivers(comm, {}, 0);
}

TEST_F(TunedBroadcastRun, UntunedCommunicatorMatchesRunBroadcast) {
  const api::Communicator comm(kMachine, std::make_shared<Planner>());
  expect_delivers(comm, payload(96), 2);
}

}  // namespace
}  // namespace logpc::tune
