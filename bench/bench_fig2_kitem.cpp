/// Experiment F2 - Figure 2: the L = 3, P = 10 running example.  Top-left:
/// the optimal broadcast tree T9; middle: the continuous-broadcast
/// receiving pattern and legal words; bottom: the complete broadcast
/// schedule for k = 8 values.

#include "bench_util.hpp"

#include <algorithm>

#include "bcast/automaton.hpp"
#include "bcast/continuous.hpp"
#include "bcast/kitem.hpp"
#include "sched/metrics.hpp"
#include "validate/checker.hpp"
#include "viz/table.hpp"
#include "viz/tree_render.hpp"

namespace {

using namespace logpc;
using logpc::bench::Table;

// Plans store letters in ascending-delay order; the paper names them in
// descending order ('a' = the item terminating this step = max delay).
std::string paper_word(const bcast::ContinuousPlan& plan,
                       const bcast::Word& word) {
  const Time max_delay_ = *std::max_element(plan.letter_delays.begin(),
                                            plan.letter_delays.end());
  const auto n = static_cast<int>(plan.letter_delays.size());
  std::string s;
  for (const int l : word) {
    const Time delay = plan.letter_delays[static_cast<std::size_t>(l % n)] +
                       l / n;  // wait variants shift the effective delay
    s.push_back(static_cast<char>('a' + (max_delay_ - delay)));
  }
  return s;
}

void report() {
  logpc::bench::section("Figure 2 (top-left): optimal broadcast tree T9, L=3");
  const auto t9 = bcast::BroadcastTree::optimal(Params::postal(9, 3), 9);
  std::cout << viz::render_tree(t9) << viz::degree_summary(t9) << "\n";

  logpc::bench::section(
      "Figure 2 (middle-right): legal words for the H5 block (automaton)");
  const auto ctx = bcast::WordContext::standard(7, 3, 5, 0);
  std::cout << "legal H5 words:";
  for (const auto& w : bcast::enumerate_legal_words(ctx)) {
    std::cout << " " << bcast::word_to_string(w);
  }
  std::cout << "   (paper: cccc, acab, abca, abbb; supply excludes cccc and"
               " abbb)\n";

  const auto res = bcast::plan_continuous(3, 7);
  if (res.status != bcast::SolveStatus::kSolved) {
    std::cout << "plan_continuous FAILED\n";
    return;
  }
  logpc::bench::section("Figure 2 (middle-left): block words chosen");
  Table words({"block", "size r", "delay d", "word"});
  for (const auto& b : res.plan->blocks) {
    words.row("block@" + std::to_string(b.d), b.r, b.d,
              paper_word(*res.plan, b.word));
  }
  words.row("receive-only", 1, "-",
            paper_word(*res.plan,
                       bcast::Word{res.plan->receive_only_letter}));
  words.print();

  logpc::bench::section("Figure 2 (middle): continuous receiving pattern");
  const auto rows = bcast::reception_pattern(*res.plan);
  Table pattern({"proc", "role delays per step (period)"});
  for (ProcId p = 0; p < res.plan->params.P; ++p) {
    std::string cells;
    for (const Time d : rows[static_cast<std::size_t>(p)]) {
      cells += (cells.empty() ? "" : " ") +
               (d < 0 ? std::string("src") : std::to_string(d));
    }
    pattern.row("P" + std::to_string(p), cells);
  }
  pattern.print();

  logpc::bench::section("Figure 2 (bottom): broadcast schedule for 8 values");
  const Schedule s = bcast::emit_k_items(*res.plan, 8);
  std::cout << viz::reception_table(s);

  logpc::bench::section("paper vs measured");
  const auto bounds = bcast::kitem_bounds(10, 3, 8);
  Table t({"quantity", "paper", "measured", "match"});
  t.row("B(9)", 7, bounds.B, logpc::bench::ok(bounds.B == 7));
  t.row("k*", 2, bounds.k_star, logpc::bench::ok(bounds.k_star == 2));
  t.row("Thm 3.1 lower bound", 15, bounds.general_lower,
        logpc::bench::ok(bounds.general_lower == 15));
  t.row("per-item delay L+B(9)", 10, max_delay(s),
        logpc::bench::ok(max_delay(s) == 10));
  t.row("single-sending completion", 17, completion_time(s),
        logpc::bench::ok(completion_time(s) == 17));
  t.row("schedule valid", "-", validate::check(s).summary(),
        logpc::bench::ok(validate::is_valid(s)));
  t.row("single-sending", "yes", logpc::bench::ok(is_single_sending(s, 0)),
        logpc::bench::ok(is_single_sending(s, 0)));
  t.print();
}

void BM_PlanContinuousT9(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcast::plan_continuous(3, 7));
  }
}
BENCHMARK(BM_PlanContinuousT9);

void BM_EmitKItems(benchmark::State& state) {
  const auto res = bcast::plan_continuous(3, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bcast::emit_k_items(*res.plan, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_EmitKItems)->Arg(8)->Arg(64)->Arg(512);

void BM_EnumerateH5Words(benchmark::State& state) {
  const auto ctx = bcast::WordContext::standard(7, 3, 5, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcast::enumerate_legal_words(ctx));
  }
}
BENCHMARK(BM_EnumerateH5Words);

}  // namespace

LOGPC_BENCH_MAIN(report)
