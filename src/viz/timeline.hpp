#pragma once

#include <string>

#include "sched/schedule.hpp"

/// \file timeline.hpp
/// Per-processor activity charts over time (Figure 1 right, Figure 6 left).

namespace logpc::viz {

/// Renders one row per processor, one column per cycle:
///   's' = busy with send overhead, 'r' = receive overhead, '*' = a
///   zero-overhead send instant, 'v' = a zero-overhead receive instant,
///   '.' = idle.  A header row marks every 5th cycle.
[[nodiscard]] std::string render_timeline(const Schedule& s);

}  // namespace logpc::viz
