# Empty compiler generated dependencies file for test_kitem.
# This may be replaced when dependencies are built.
