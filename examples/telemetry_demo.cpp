/// Telemetry demo: run a planning workload with the observability layer on,
/// then dump both export formats —
///
///   telemetry.prom        Prometheus text snapshot of the metrics registry
///                         (planner build-latency histograms, cache
///                         hit/miss counters, per-shard occupancy gauges)
///   telemetry_trace.json  Chrome trace-event JSON: the runtime spans
///                         (warmup grid points, planner builds, collective
///                         calls) as process 1, and a simulated broadcast's
///                         per-processor send/recv overhead timeline as
///                         process 2.  Load it at ui.perfetto.dev or
///                         chrome://tracing.
///
///   ./telemetry_demo [outdir]

#include <fstream>
#include <iostream>
#include <string>

#include "api/communicator.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/prometheus.hpp"
#include "runtime/warmup.hpp"
#include "sim/trace.hpp"

int main(int argc, char** argv) {
  using namespace logpc;
  const std::string outdir = argc >= 2 ? std::string(argv[1]) + "/" : "";

  // 1. A serving process warms its planner over a machine grid; every grid
  //    point records a span, every build feeds a latency histogram.
  runtime::Planner planner;
  runtime::WarmupGrid grid;
  grid.problems = {runtime::Problem::kBroadcast,
                   runtime::Problem::kKItemBroadcast,
                   runtime::Problem::kReduce, runtime::Problem::kSummation};
  for (const int P : {4, 8, 16}) {
    grid.machines.push_back(Params{P, 6, 2, 4});
    grid.machines.push_back(Params::postal(P, 4));
  }
  grid.ks = {1, 4, 16};
  const runtime::WarmupReport warm = runtime::warmup(planner, grid, 4);
  std::cout << "warmup: " << warm.planned << "/" << warm.requested
            << " keys planned, " << warm.built << " built\n";

  // 2. Live traffic: collective calls resolve through the shared cache
  //    (each one a span; repeats are cache hits).
  api::Communicator comm(Params{8, 6, 2, 4});
  for (int round = 0; round < 3; ++round) {
    (void)comm.bcast();
    (void)comm.bcast_k(8);
    (void)comm.reduce();
    (void)comm.alltoall(2);
  }
  const runtime::CacheStats stats = comm.planner()->cache().stats();
  std::cout << "shared cache: " << stats.hits << " hits, " << stats.misses
            << " misses (hit ratio " << stats.hit_ratio() << ")\n";

  // 3. Prometheus snapshot: what a /metrics scrape would return.
  const std::string prom_path = outdir + "telemetry.prom";
  {
    std::ofstream out(prom_path);
    obs::write_prometheus(obs::MetricsRegistry::global(), out);
  }

  // 4. Chrome trace: runtime spans + the optimal broadcast schedule's
  //    simulated timeline (one thread row per processor).
  const Schedule bcast_schedule = comm.bcast();
  const sim::Trace sim_trace = sim::Trace::from(bcast_schedule);
  obs::ChromeTraceWriter trace;
  trace.add(obs::TraceRecorder::global(), 1, "logpc runtime");
  trace.add(sim_trace, 2, "simulated broadcast P=8 L=6 o=2 g=4");
  const std::string trace_path = outdir + "telemetry_trace.json";
  {
    std::ofstream out(trace_path);
    trace.write(out);
  }

  std::cout << "spans recorded: " << obs::TraceRecorder::global().recorded()
            << " (" << obs::TraceRecorder::global().dropped() << " dropped)\n"
            << "trace events exported: " << trace.num_events() << "\n\n"
            << "wrote " << prom_path << "\n"
            << "wrote " << trace_path
            << "  (load at ui.perfetto.dev or chrome://tracing)\n";
  return 0;
}
