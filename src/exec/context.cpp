#include "exec/context.hpp"

namespace logpc::exec {

bool RunContext::prepare(const RunShape& shape) {
  const bool warm = prepared_ && shape == shape_;
  if (warm) {
    // Same shape as the previous run: every resource is structurally
    // reusable.  Clear the *contents* only — a reliable run can leave
    // retransmitted duplicates in a data ring and best-effort re-acks in
    // an ack ring even after completing cleanly, and a stale ack from a
    // previous run's sequence space would satisfy a new run's ack wait
    // spuriously.  Both sides of every ring are quiescent here (the pool's
    // epoch barrier joined all workers), so draining is race-free.
    Message m;
    for (auto& mb : mailboxes) {
      while (mb->try_pop(m)) {
      }
      mb->reset_stats();
    }
    std::uint64_t a = 0;
    for (auto& ar : acks) {
      while (ar->try_pop(a)) {
      }
      ar->reset_stats();
    }
    for (PendingQ& pq : pending) {
      pq.buf.clear();
      pq.head = 0;
    }
    if (shape.reliable) {
      for (std::size_t p = 0; p < shape.procs; ++p) {
        hearts[p].v.store(0, std::memory_order_relaxed);
      }
    }
  } else {
    mailboxes.clear();
    mailboxes.reserve(shape.links);
    for (std::size_t i = 0; i < shape.links; ++i) {
      mailboxes.push_back(
          std::make_unique<SpscMailbox>(shape.capacity, shape.mailbox_stats));
    }
    pending.assign(shape.links, PendingQ{});
    for (PendingQ& pq : pending) pq.buf.reserve(shape.capacity);
    acks.clear();
    if (shape.reliable) {
      acks.reserve(shape.links);
      for (std::size_t i = 0; i < shape.links; ++i) {
        acks.push_back(
            std::make_unique<AckRing>(shape.capacity, shape.mailbox_stats));
      }
      hearts = std::make_unique<Heartbeat[]>(shape.procs);
    } else {
      hearts.reset();
    }
    shape_ = shape;
    prepared_ = true;
  }

  // Per-run sequence state always starts from zero; the vectors keep their
  // heap blocks across same-shape runs (assign never shrinks capacity).
  if (shape.reliable) {
    send_seq.assign(shape.links, 0);
    acked.assign(shape.links, 0);
    accepted.assign(shape.links, 0);
    attempts.assign(shape.links, 0);
  } else {
    send_seq.clear();
    acked.clear();
    accepted.clear();
    attempts.clear();
  }

  // The arena rewinds without releasing chunks, so same-sized payload
  // staging re-carves the previous run's memory.  Slot tables are sized by
  // the caller (they depend on num_items, not the shape).
  arena.reset();
  slots.clear();
  slot_filled.clear();
  slot_used.clear();
  return warm;
}

}  // namespace logpc::exec
