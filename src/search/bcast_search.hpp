#pragma once

#include <cstdint>
#include <optional>

#include "logp/time.hpp"
#include "sched/schedule.hpp"

/// \file bcast_search.hpp
/// Exact optimal k-item broadcast times for tiny instances, by exhaustive
/// state-space search over all postal-model schedules.  Used to *certify*
/// the constructions: on every instance small enough to search, the
/// library's schedules must match the true optimum (or the theorems'
/// bounds, where the paper itself proves slack is unavoidable).

namespace logpc::search {

struct SearchLimits {
  std::uint64_t max_nodes = 50'000'000;  ///< DFS node budget
  Time max_T = 64;                       ///< give up beyond this horizon
};

/// Decides whether all k items (initially at processor 0) can reach all P
/// processors by time T in the postal model with latency L.  Exact;
/// nullopt if the node budget was exhausted before deciding.
[[nodiscard]] std::optional<bool> feasible(int P, Time L, int k, Time T,
                                           const SearchLimits& limits = {});

/// The exact minimum completion time, found by scanning T upward from the
/// Theorem 3.1 lower bound.  nullopt if any decision ran out of budget.
[[nodiscard]] std::optional<Time> min_completion(
    int P, Time L, int k, const SearchLimits& limits = {});

/// A certified-optimal schedule: min_completion's witness, extracted from
/// the successful search path.  nullopt on budget exhaustion.  The result
/// may be multi-sending (the Theorem 3.2 endgame) - the only construction
/// in this library that is optimal over *all* schedules, not just
/// single-sending ones.
[[nodiscard]] std::optional<Schedule> optimal_schedule(
    int P, Time L, int k, const SearchLimits& limits = {});

}  // namespace logpc::search
