#include "bcast/kitem_buffered.hpp"

#include <gtest/gtest.h>

#include "sched/metrics.hpp"
#include "validate/checker.hpp"

namespace logpc::bcast {
namespace {

struct Instance {
  int P;
  Time L;
  int k;
};

class BufferedSweep : public ::testing::TestWithParam<Instance> {};

// Theorem 3.8: in the modified model the single-sending lower bound
// B(P-1) + L + k - 1 is achieved exactly, for all k, L, P.
TEST_P(BufferedSweep, MeetsSingleSendingLowerBoundExactly) {
  const auto [P, L, k] = GetParam();
  const auto r = kitem_buffered(P, L, k);
  EXPECT_EQ(r.completion, r.bounds.single_sending_lower)
      << "P=" << P << " L=" << L << " k=" << k;
  const auto check =
      validate::check(r.schedule, {.buffered = true, .buffer_limit = 2});
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_TRUE(is_single_sending(r.schedule, 0));
  // The paper's footnote: buffer size 2 suffices.
  EXPECT_LE(r.max_buffer_depth, 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BufferedSweep,
    ::testing::Values(
        Instance{2, 2, 3}, Instance{4, 1, 4}, Instance{5, 2, 6},
        Instance{8, 2, 4}, Instance{10, 1, 5}, Instance{10, 3, 8},
        Instance{13, 2, 5}, Instance{14, 3, 14}, Instance{17, 4, 6},
        Instance{21, 2, 7}, Instance{29, 2, 4}, Instance{30, 5, 3},
        Instance{9, 6, 2}, Instance{33, 1, 6}, Instance{12, 3, 4}));

TEST(KItemBuffered, Figure5Instance) {
  // L = 3, P - 1 = 13, k = 14: completion L + B(13) + k - 1 = 24, exactly
  // Figure 5's last column.
  const auto r = kitem_buffered(14, 3, 14);
  EXPECT_EQ(r.completion, 24);
  const auto check =
      validate::check(r.schedule, {.buffered = true, .buffer_limit = 2});
  EXPECT_TRUE(check.ok()) << check.summary();
}

TEST(KItemBuffered, StrictInstancesNeedNoBuffering) {
  // Where the strict plan exists (L = 3, exact P), no receive is delayed:
  // nothing is ever held across a cycle (depth counts items held past
  // their arrival instant).
  const auto r = kitem_buffered(10, 3, 5);
  EXPECT_EQ(r.max_buffer_depth, 0);
  for (const auto& op : r.schedule.sends()) {
    EXPECT_EQ(op.recv_start, kNever);
  }
}

TEST(KItemBuffered, L2InstancesUseDelayedItems) {
  // L = 2 strict is impossible (Theorem 3.4); the buffered schedule must
  // actually delay some receptions (Figure 5's boxed items).
  const auto r = kitem_buffered(9, 2, 6);
  EXPECT_EQ(r.completion, r.bounds.single_sending_lower);
  bool any_delayed = false;
  for (const auto& op : r.schedule.sends()) {
    any_delayed = any_delayed || op.recv_start != kNever;
  }
  EXPECT_TRUE(any_delayed);
}

TEST(KItemBuffered, DeliveryIsExactlyOnce) {
  const auto r = kitem_buffered(13, 2, 4);
  for (ItemId i = 0; i < 4; ++i) {
    const auto counts = receive_counts(r.schedule, i);
    for (ProcId p = 1; p < 13; ++p) {
      EXPECT_EQ(counts[static_cast<std::size_t>(p)], 1);
    }
  }
}

TEST(KItemBuffered, RejectsBadArguments) {
  EXPECT_THROW(kitem_buffered(1, 3, 2), std::invalid_argument);
  EXPECT_THROW(kitem_buffered(4, 0, 2), std::invalid_argument);
  EXPECT_THROW(kitem_buffered(4, 3, 0), std::invalid_argument);
}

}  // namespace
}  // namespace logpc::bcast
