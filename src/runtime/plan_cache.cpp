#include "runtime/plan_cache.hpp"

#include <algorithm>
#include <stdexcept>

namespace logpc::runtime {

PlanCache::PlanCache(std::size_t capacity, std::size_t num_shards) {
  capacity_ = std::max<std::size_t>(capacity, 1);
  num_shards = std::clamp<std::size_t>(num_shards, 1, capacity_);
  shard_capacity_ = (capacity_ + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PlanPtr PlanCache::get(const PlanKey& key, bool count_stats) {
  Shard& shard = shard_for(key);
  const std::scoped_lock lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    if (count_stats) ++shard.misses;
    return nullptr;
  }
  if (count_stats) ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void PlanCache::put(const PlanKey& key, PlanPtr plan) {
  if (!plan) throw std::invalid_argument("PlanCache::put: null plan");
  Shard& shard = shard_for(key);
  const std::scoped_lock lock(shard.mu);
  if (const auto it = shard.map.find(key); it != shard.map.end()) {
    it->second->second = std::move(plan);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(plan));
  shard.map.emplace(key, shard.lru.begin());
  ++shard.inserts;
  while (shard.lru.size() > shard_capacity_) {
    shard.map.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

bool PlanCache::contains(const PlanKey& key) const {
  Shard& shard = shard_for(key);
  const std::scoped_lock lock(shard.mu);
  return shard.map.contains(key);
}

std::size_t PlanCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

CacheStats PlanCache::stats() const {
  CacheStats s;
  s.shard_entries.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mu);
    s.hits += shard->hits;
    s.misses += shard->misses;
    s.inserts += shard->inserts;
    s.evictions += shard->evictions;
    s.entries += shard->lru.size();
    s.shard_entries.push_back(shard->lru.size());
  }
  return s;
}

void PlanCache::clear() {
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mu);
    shard->map.clear();
    shard->lru.clear();
  }
}

std::vector<PlanPtr> PlanCache::entries() const {
  std::vector<PlanPtr> out;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mu);
    for (const auto& [key, plan] : shard->lru) out.push_back(plan);
  }
  return out;
}

}  // namespace logpc::runtime
