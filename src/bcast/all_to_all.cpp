#include "bcast/all_to_all.hpp"

#include <stdexcept>

#include "sched/metrics.hpp"

namespace logpc::bcast {

namespace {

void require_k(int k) {
  if (k < 1) throw std::invalid_argument("all_to_all: k >= 1");
}

}  // namespace

Time all_to_all_lower_bound(const Params& params, int k) {
  params.require_valid();
  require_k(k);
  if (params.P == 1) return 0;
  return params.L + 2 * params.o +
         (static_cast<Time>(k) * (params.P - 1) - 1) * params.g;
}

Schedule all_to_all(const Params& params) { return all_to_all_k(params, 1); }

Schedule all_to_all_k(const Params& params, int k) {
  params.require_valid();
  require_k(k);
  const int P = params.P;
  Schedule s(params, P * k);
  for (ProcId p = 0; p < P; ++p) {
    for (int j = 0; j < k; ++j) {
      s.add_initial(p * k + j, p, 0);
    }
  }
  // Round r (r = 0 .. k(P-1)-1): processor i sends item copy r/(P-1) to
  // processor i + (r mod (P-1)) + 1.  Every processor is the target of
  // exactly one message per round, so receives are conflict-free.
  for (int r = 0; r < k * (P - 1); ++r) {
    const int j = r / (P - 1);
    const int offset = r % (P - 1) + 1;
    const Time start = static_cast<Time>(r) * params.g;
    for (ProcId i = 0; i < P; ++i) {
      const auto to = static_cast<ProcId>((i + offset) % P);
      s.add_send(start, i, to, i * k + j);
    }
  }
  s.sort();
  return s;
}

Schedule all_to_all_personalized(const Params& params) {
  params.require_valid();
  const int P = params.P;
  Schedule s(params, P * P);
  for (ProcId p = 0; p < P; ++p) {
    for (ProcId d = 0; d < P; ++d) {
      if (d != p) s.add_initial(p * P + d, p, 0);
    }
  }
  for (int r = 0; r < P - 1; ++r) {
    const Time start = static_cast<Time>(r) * params.g;
    for (ProcId i = 0; i < P; ++i) {
      const auto to = static_cast<ProcId>((i + r + 1) % P);
      s.add_send(start, i, to, i * P + to);
    }
  }
  s.sort();
  return s;
}

bool personalized_complete(const Schedule& s) {
  const int P = s.params().P;
  const auto avail = availability_matrix(s);
  for (ProcId src = 0; src < P; ++src) {
    for (ProcId dst = 0; dst < P; ++dst) {
      if (src == dst) continue;
      if (avail[static_cast<std::size_t>(src * P + dst)]
               [static_cast<std::size_t>(dst)] == kNever) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace logpc::bcast
