#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

/// \file bench_util.hpp
/// Shared scaffolding for the reproduction benches.  Each bench binary
/// first prints the paper-vs-measured tables for its figure/claim, then
/// runs its google-benchmark microbenchmarks.  JsonReport additionally
/// writes a machine-readable BENCH_<name>.json — measurement entries plus a
/// metrics-registry snapshot — so the perf trajectory accumulates across
/// runs instead of living only in scrollback.

namespace logpc::bench {

/// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  template <typename... Ts>
  void row(const Ts&... cells) {
    std::vector<std::string> r;
    (r.push_back(to_cell(cells)), ...);
    rows_.push_back(std::move(r));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << "| " << std::setw(static_cast<int>(width[c]))
           << (c < cells.size() ? cells[c] : "") << " ";
      }
      os << "|\n";
    };
    line(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << "|" << std::string(width[c] + 2, '-');
    }
    os << "|\n";
    for (const auto& r : rows_) line(r);
  }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      std::ostringstream os;
      os << v;
      return os.str();
    }
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void section(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// "yes"/"NO" marker for reproduction columns.
inline std::string ok(bool v) { return v ? "yes" : "NO"; }

/// Machine-readable bench output: named measurement entries (string params,
/// numeric values) plus an optional obs::MetricsRegistry snapshot, written
/// as BENCH_<bench>.json into $LOGPC_BENCH_DIR (default: the working
/// directory).
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_(std::move(bench_name)) {}

  /// One measurement: `params` describe the configuration ("threads": "4"),
  /// `values` carry the numbers ("ns_per_op": 132.5).
  void entry(const std::string& name,
             std::vector<std::pair<std::string, std::string>> params,
             std::vector<std::pair<std::string, double>> values) {
    std::ostringstream e;
    e << "    {\"name\": " << obs::json_string(name) << ", \"params\": {";
    for (std::size_t i = 0; i < params.size(); ++i) {
      e << (i ? ", " : "") << obs::json_string(params[i].first) << ": "
        << obs::json_string(params[i].second);
    }
    e << "}";
    for (const auto& [key, value] : values) {
      e << ", " << obs::json_string(key) << ": " << obs::json_number(value);
    }
    e << "}";
    entries_.push_back(e.str());
  }

  /// Attaches a point-in-time snapshot of `reg` (counters and gauges as
  /// values, histograms as count/sum) under "metrics".
  void attach_metrics(const obs::MetricsRegistry& reg) {
    std::ostringstream m;
    bool first = true;
    for (const obs::MetricSnapshot& s : reg.snapshot()) {
      const std::string key =
          s.labels.empty() ? s.name : s.name + "{" + s.labels + "}";
      if (s.kind == obs::MetricSnapshot::Kind::kHistogram) {
        m << (first ? "" : ",\n") << "    " << obs::json_string(key)
          << ": {\"count\": " << s.count
          << ", \"sum\": " << obs::json_number(s.sum) << "}";
      } else {
        m << (first ? "" : ",\n") << "    " << obs::json_string(key) << ": "
          << obs::json_number(s.value);
      }
      first = false;
    }
    metrics_json_ = m.str();
    have_metrics_ = true;
  }

  /// `prior` (optional) is a block of already-serialized entry lines to
  /// keep ahead of this report's own — the merge path below.
  [[nodiscard]] std::string to_json(const std::string& prior = "") const {
    std::ostringstream os;
    os << "{\n  \"bench\": " << obs::json_string(bench_) << ",\n"
       << "  \"entries\": [\n";
    if (!prior.empty()) os << prior << (entries_.empty() ? "\n" : ",\n");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      os << entries_[i] << (i + 1 < entries_.size() ? ",\n" : "\n");
    }
    os << "  ]";
    if (have_metrics_) {
      os << ",\n  \"metrics\": {\n" << metrics_json_ << "\n  }";
    }
    os << "\n}\n";
    return os.str();
  }

  /// Writes BENCH_<bench>.json; returns the path, or "" on failure.
  /// With LOGPC_BENCH_MERGE set (non-empty), entries already in the file
  /// are preserved ahead of this report's — so two bench binaries (e.g.
  /// bench_service and bench_loadgen) can accumulate into one
  /// BENCH_throughput.json instead of the second overwriting the first.
  std::string write() const {
    const char* dir = std::getenv("LOGPC_BENCH_DIR");
    std::string path = dir && *dir ? std::string(dir) + "/" : std::string();
    path += "BENCH_" + bench_ + ".json";
    std::string prior;
    const char* merge = std::getenv("LOGPC_BENCH_MERGE");
    if (merge != nullptr && *merge != '\0') prior = prior_entries(path);
    std::ofstream out(path);
    if (!out) return "";
    out << to_json(prior);
    return out ? path : "";
  }

 private:
  /// The entry block of a previous JsonReport at `path` ("" when the file
  /// is absent or not in this writer's format).  Textual on purpose: the
  /// writer above fully controls the layout, so the entry lines between
  /// `"entries": [` and the closing `  ]` round-trip verbatim.
  static std::string prior_entries(const std::string& path) {
    std::ifstream in(path);
    if (!in) return "";
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    const std::string open = "\"entries\": [\n";
    const std::size_t a = text.find(open);
    if (a == std::string::npos) return "";
    const std::size_t b = text.find("\n  ]", a);
    if (b == std::string::npos) return "";
    return text.substr(a + open.size(), b - (a + open.size()));
  }

  std::string bench_;
  std::vector<std::string> entries_;
  std::string metrics_json_;
  bool have_metrics_ = false;
};

/// Process-wide JsonReport slot.  A bench that wants BENCH_<name>.json
/// written without managing the object itself calls
/// `global_report("name")` and adds entries; LOGPC_BENCH_MAIN writes the
/// file (with a registry snapshot attached) after the microbenchmarks run,
/// so measurements from BENCHMARK() bodies can land in it too.
inline std::unique_ptr<JsonReport>& global_report_slot() {
  static std::unique_ptr<JsonReport> slot;
  return slot;
}

/// Opens (first call, which fixes the name) or returns the global report.
inline JsonReport& global_report(const std::string& bench_name) {
  auto& slot = global_report_slot();
  if (!slot) slot = std::make_unique<JsonReport>(bench_name);
  return *slot;
}

/// Write hook for LOGPC_BENCH_MAIN: no-op unless global_report() was used.
inline void write_global_report() {
  auto& slot = global_report_slot();
  if (!slot) return;
  slot->attach_metrics(obs::MetricsRegistry::global());
  const std::string path = slot->write();
  std::cout << (path.empty() ? "FAILED to write bench json"
                             : "bench json: " + path)
            << "\n";
  slot.reset();
}

}  // namespace logpc::bench

/// Standard bench main: print the reproduction report, run the
/// microbenchmarks, then flush the global JsonReport (if the bench opened
/// one).  Define `void report();` before including via the
/// LOGPC_BENCH_MAIN macro.
#define LOGPC_BENCH_MAIN(report_fn)                          \
  int main(int argc, char** argv) {                          \
    report_fn();                                             \
    ::benchmark::Initialize(&argc, argv);                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                              \
    ::benchmark::RunSpecifiedBenchmarks();                   \
    ::benchmark::Shutdown();                                 \
    ::logpc::bench::write_global_report();                   \
    return 0;                                                \
  }
