file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_summation.dir/bench_fig6_summation.cpp.o"
  "CMakeFiles/bench_fig6_summation.dir/bench_fig6_summation.cpp.o.d"
  "bench_fig6_summation"
  "bench_fig6_summation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_summation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
