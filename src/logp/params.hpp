#pragma once

#include <iosfwd>
#include <string>

#include "logp/time.hpp"

/// \file params.hpp
/// The four LogP machine parameters and the timing rules derived from them.

namespace logpc {

/// The LogP machine description (Culler et al., PPoPP 1993), as used by the
/// SPAA'93 broadcast/summation paper:
///
///  * `P` — number of processor/memory pairs,
///  * `L` — latency: every message spends exactly `L` cycles in the network
///    (the paper's synchronous timing assumption: "each message incurs the
///    full latency of L"),
///  * `o` — overhead: a processor is busy for `o` cycles on each send and on
///    each receive,
///  * `g` — gap: at least `g` cycles between successive sends (and between
///    successive receives) at the same processor.
///
/// The network capacity constraint — at most ceil(L/g) messages in transit
/// from or to any processor — is checked by the validator and simulator.
struct Params {
  int P = 1;
  Time L = 1;
  Time o = 0;
  Time g = 1;

  /// The postal model of Bar-Noy & Kipnis: g = 1, o = 0.  Sections 3 of the
  /// paper (k-item and continuous broadcast) are analysed in this model.
  static constexpr Params postal(int P, Time L) { return Params{P, L, 0, 1}; }

  /// True iff the parameters describe a legal machine (P >= 1, L >= 1,
  /// o >= 0, g >= 1).  The paper additionally normalises g <= L for the
  /// capacity bound to be meaningful; we do not require that.
  [[nodiscard]] bool valid() const {
    return P >= 1 && L >= 1 && o >= 0 && g >= 1;
  }

  /// Throws std::invalid_argument when !valid().
  void require_valid() const;

  /// Network capacity per endpoint: ceil(L/g) messages may be in transit
  /// from any one processor, or to any one processor, at any time.
  [[nodiscard]] long capacity() const {
    return static_cast<long>((L + g - 1) / g);
  }

  /// True iff this is a postal-model instance (g == 1, o == 0), where the
  /// closed-form Fibonacci results of Section 2 apply directly.
  [[nodiscard]] bool is_postal() const { return g == 1 && o == 0; }

  /// Cycles from the *start* of a send to the datum being available at the
  /// receiver: o (send overhead) + L (wire) + o (receive overhead).
  [[nodiscard]] Time transfer_time() const { return L + 2 * o; }

  /// Label of the i-th child (i >= 0) of a universal-broadcast-tree node
  /// labelled `parent`: the parent starts its i-th send g*i cycles after
  /// becoming informed and the datum lands transfer_time() later.
  [[nodiscard]] Time child_label(Time parent, int i) const {
    return parent + static_cast<Time>(i) * g + transfer_time();
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Params&, const Params&) = default;
};

std::ostream& operator<<(std::ostream& os, const Params& p);

}  // namespace logpc
