#include "logp/fib.hpp"

#include <map>
#include <mutex>
#include <stdexcept>

namespace logpc {

Count sat_add(Count a, Count b) {
  const Count s = a + b;
  return (s >= kSaturated || s < a) ? kSaturated : s;
}

Fib::Fib(Time L) : L_(L) {
  if (L < 1) throw std::invalid_argument("Fib: latency L must be >= 1");
}

void Fib::extend(Time i) const {
  if (f_.empty()) {
    f_.assign(static_cast<std::size_t>(L_), Count{1});
    sum_.resize(static_cast<std::size_t>(L_));
    Count acc = 0;
    for (std::size_t j = 0; j < f_.size(); ++j) {
      acc = sat_add(acc, f_[j]);
      sum_[j] = acc;
    }
  }
  while (static_cast<Time>(f_.size()) <= i) {
    const auto n = f_.size();
    const Count next =
        sat_add(f_[n - 1], f_[n - static_cast<std::size_t>(L_)]);
    f_.push_back(next);
    sum_.push_back(sat_add(sum_[n - 1], next));
  }
}

Count Fib::f(Time i) const {
  if (i < 0) throw std::out_of_range("Fib::f: negative index");
  extend(i);
  return f_[static_cast<std::size_t>(i)];
}

Count Fib::sum(Time i) const {
  if (i < 0) return 0;
  extend(i);
  return sum_[static_cast<std::size_t>(i)];
}

Time Fib::B_of_P(Count P) const {
  if (P < 1) throw std::invalid_argument("Fib::B_of_P: P must be >= 1");
  // f(t) clamps at kSaturated, so the scan below can never reach a larger
  // P — without this guard it spins forever while growing the memo.
  if (P > kSaturated) throw std::overflow_error("Fib::B_of_P: P too big");
  Time t = 0;
  while (f(t) < P) ++t;
  return t;
}

bool Fib::is_exact_P(Count P) const {
  if (P < 1) return false;
  // At or past the clamp f(t) == kSaturated is a floor, not a value, so
  // "f hits P exactly" is unanswerable.
  if (P >= kSaturated) throw std::overflow_error("Fib::is_exact_P: P too big");
  return f(B_of_P(P)) == P;
}

Count Fib::k_star(Count P) const {
  if (P < 2) throw std::invalid_argument("Fib::k_star: P must be >= 2");
  if (P - 1 >= kSaturated) throw std::overflow_error("Fib::k_star: P too big");
  // n: the index with f_n < P-1 <= f_{n+1}; when P-1 == 1 every f_i >= 1 so
  // n = -1 and the empty sum gives k* = 0.
  Time n = -1;
  while (f(n + 1) < P - 1) ++n;
  return sum(n) / (P - 1);
}

namespace {

/// One lazily grown table per latency, shared by every thread.  The single
/// mutex guards both the registry and the tables' lazy extension (Fib alone
/// is thread-compatible, not thread-safe).  The registry is a function-local
/// static, so construction happens exactly once; it is intentionally leaked
/// to stay usable during static destruction.
struct SharedTables {
  std::mutex mu;
  std::map<Time, Fib> tables;
};

SharedTables& shared_tables() {
  static SharedTables* tables = new SharedTables;
  return *tables;
}

template <typename F>
auto with_shared_fib(Time L, F&& query) {
  SharedTables& st = shared_tables();
  const std::scoped_lock lock(st.mu);
  auto it = st.tables.find(L);
  if (it == st.tables.end()) it = st.tables.emplace(L, Fib(L)).first;
  return query(it->second);
}

}  // namespace

Count shared_fib_f(Time L, Time i) {
  return with_shared_fib(L, [&](const Fib& fib) { return fib.f(i); });
}

Count shared_fib_sum(Time L, Time i) {
  return with_shared_fib(L, [&](const Fib& fib) { return fib.sum(i); });
}

Time shared_B_of_P(Time L, Count P) {
  return with_shared_fib(L, [&](const Fib& fib) { return fib.B_of_P(P); });
}

bool shared_is_exact_P(Time L, Count P) {
  return with_shared_fib(L, [&](const Fib& fib) { return fib.is_exact_P(P); });
}

Count shared_k_star(Time L, Count P) {
  return with_shared_fib(L, [&](const Fib& fib) { return fib.k_star(P); });
}

}  // namespace logpc
