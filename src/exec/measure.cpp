#include "exec/measure.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

namespace logpc::exec {

sim::MeasuredParams MeasuredLogP::as_measured_params(
    double ns_per_cycle, const Params& machine) const {
  sim::MeasuredParams m;
  m.P = machine.P;
  if (ns_per_cycle <= 0) {
    m.L = 1;
    m.o = 0;
    m.g = 1;
    return m;
  }
  const auto cycles = [ns_per_cycle](double ns, Time floor_at) {
    return std::max(floor_at,
                    static_cast<Time>(std::llround(ns / ns_per_cycle)));
  };
  m.L = cycles(L_ns, 1);
  m.o = cycles(o_ns, 0);
  m.g = cycles(g_ns, 1);
  return m;
}

MeasuredLogP measure(const ExecReport& report) {
  MeasuredLogP fit;
  double latency_sum = 0, overhead_sum = 0, gap_sum = 0;

  // Per-link FIFO matching: the i-th push on a link pairs with the i-th
  // pop, so wire latency is recv.xfer - send.xfer of the matched pair.
  std::map<std::pair<ProcId, ProcId>, std::vector<std::uint64_t>> pushes;
  for (std::size_t p = 0; p < report.events.size(); ++p) {
    for (const ExecEvent& ev : report.events[p]) {
      if (ev.kind == ExecEvent::Kind::kSend) {
        pushes[{static_cast<ProcId>(p), ev.peer}].push_back(ev.xfer_ns);
      }
    }
  }
  std::map<std::pair<ProcId, ProcId>, std::size_t> popped;
  for (std::size_t p = 0; p < report.events.size(); ++p) {
    std::uint64_t prev_send_start = 0;
    bool have_prev_send = false;
    for (const ExecEvent& ev : report.events[p]) {
      if (ev.kind == ExecEvent::Kind::kRecv) {
        // Receive overhead: payload-arrived to folded/stored.
        overhead_sum += static_cast<double>(ev.end_ns - ev.xfer_ns);
        ++fit.overhead_samples;
        const auto link = std::make_pair(ev.peer, static_cast<ProcId>(p));
        auto it = pushes.find(link);
        if (it != pushes.end()) {
          const std::size_t i = popped[link]++;
          if (i < it->second.size() && ev.xfer_ns >= it->second[i]) {
            latency_sum += static_cast<double>(ev.xfer_ns - it->second[i]);
            ++fit.latency_samples;
          }
        }
      } else {
        // Send overhead: op begin to push accepted (includes backpressure
        // stalls, exactly as a saturated LogP port would charge them).
        overhead_sum += static_cast<double>(ev.xfer_ns - ev.start_ns);
        ++fit.overhead_samples;
        if (have_prev_send) {
          gap_sum += static_cast<double>(ev.start_ns - prev_send_start);
          ++fit.gap_samples;
        }
        prev_send_start = ev.start_ns;
        have_prev_send = true;
      }
    }
  }

  if (fit.latency_samples > 0) {
    fit.L_ns = latency_sum / static_cast<double>(fit.latency_samples);
  }
  if (fit.overhead_samples > 0) {
    fit.o_ns = overhead_sum / static_cast<double>(fit.overhead_samples);
  }
  if (fit.gap_samples > 0) {
    fit.g_ns = gap_sum / static_cast<double>(fit.gap_samples);
  }
  // The model requires g >= the per-message port occupancy.
  fit.g_ns = std::max(fit.g_ns, fit.o_ns);
  return fit;
}

double fitted_ns_per_cycle(const ExecReport& report) {
  if (report.predicted_makespan <= 0) return 0;
  return static_cast<double>(report.wall_ns) /
         static_cast<double>(report.predicted_makespan);
}

}  // namespace logpc::exec
