# Empty dependencies file for bench_fig4_endgame.
# This may be replaced when dependencies are built.
