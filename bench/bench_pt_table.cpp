/// Experiment T22 - Theorem 2.2 and Fact 2.1: P(t; L, 0, 1) = f_t, and
/// 1 + sum_{i<=t} f_i = f_{t+L}.  Also cross-checks the general-parameter
/// DP reachable() against explicit tree construction.

#include "bench_util.hpp"

#include "bcast/tree.hpp"

namespace {

using namespace logpc;
using logpc::bench::Table;

void report() {
  logpc::bench::section("Theorem 2.2: P(t) = f_t (postal model)");
  Table t({"t", "L=1", "L=2", "L=3", "L=4", "L=5", "L=8", "L=10"});
  const Time Ls[] = {1, 2, 3, 4, 5, 8, 10};
  for (Time step = 0; step <= 14; ++step) {
    std::vector<std::string> cells;
    cells.push_back(std::to_string(step));
    Table row({"x"});
    (void)row;
    std::string c[7];
    for (std::size_t i = 0; i < 7; ++i) {
      const Fib fib(Ls[i]);
      const Count via_fib = fib.f(step);
      const Count via_dp = bcast::reachable(Params::postal(2, Ls[i]), step);
      c[i] = std::to_string(via_fib) +
             (via_fib == via_dp ? "" : "!=dp" + std::to_string(via_dp));
    }
    t.row(step, c[0], c[1], c[2], c[3], c[4], c[5], c[6]);
  }
  t.print();

  logpc::bench::section("Fact 2.1: 1 + sum f_i = f_{t+L}");
  Table f({"L", "checked range", "holds"});
  for (Time L = 1; L <= 10; ++L) {
    const Fib fib(L);
    bool holds = true;
    for (Time step = 0; step <= 40; ++step) {
      holds = holds && sat_add(1, fib.sum(step)) == fib.f(step + L);
    }
    f.row(L, "t in [0, 40]", logpc::bench::ok(holds));
  }
  f.print();

  logpc::bench::section("B(P) on general machines (DP vs explicit tree)");
  Table g({"machine", "P", "B(P) closed-form DP", "tree makespan", "match"});
  for (const Params params :
       {Params{8, 6, 2, 4}, Params{128, 4, 1, 2}, Params{1000, 10, 3, 5},
        Params{64, 2, 0, 3}}) {
    const Time dp = bcast::B_of_P(params, params.P);
    const Time tree =
        bcast::BroadcastTree::optimal(params, params.P).makespan();
    g.row(params.to_string(), params.P, dp, tree,
          logpc::bench::ok(dp == tree));
  }
  g.print();
}

void BM_Reachable(benchmark::State& state) {
  const Params params{2, 6, 2, 4};
  const Time t = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bcast::reachable(params, t));
  }
}
BENCHMARK(BM_Reachable)->Arg(50)->Arg(200)->Arg(1000);

void BM_FibSequence(benchmark::State& state) {
  for (auto _ : state) {
    Fib fib(5);
    benchmark::DoNotOptimize(fib.f(state.range(0)));
  }
}
BENCHMARK(BM_FibSequence)->Arg(64)->Arg(84);

}  // namespace

LOGPC_BENCH_MAIN(report)
