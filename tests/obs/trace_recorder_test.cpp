#include "obs/trace_recorder.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace logpc::obs {
namespace {

TraceEvent event(const std::string& name, std::uint64_t ts = 0) {
  TraceEvent e;
  e.name = name;
  e.ts_ns = ts;
  return e;
}

TEST(TraceRecorder, RetainsInOrder) {
  TraceRecorder rec(8);
  rec.record(event("a"));
  rec.record(event("b"));
  rec.record(event("c"));
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[2].name, "c");
  EXPECT_EQ(rec.recorded(), 3u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceRecorder, RingOverwritesOldestAndCountsDropped) {
  TraceRecorder rec(3);
  for (int i = 0; i < 5; ++i) rec.record(event(std::to_string(i)));
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "2");  // 0 and 1 overwritten
  EXPECT_EQ(events[2].name, "4");
  EXPECT_EQ(rec.recorded(), 5u);
  EXPECT_EQ(rec.dropped(), 2u);
}

TEST(TraceRecorder, ClearKeepsTotalsButDropsEvents) {
  TraceRecorder rec(4);
  rec.record(event("a"));
  rec.clear();
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.recorded(), 1u);
  rec.record(event("b"));
  ASSERT_EQ(rec.events().size(), 1u);
  EXPECT_EQ(rec.events()[0].name, "b");
}

TEST(TraceRecorder, ConcurrentRecordsNeverExceedCapacity) {
  TraceRecorder rec(64);
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&rec] {
      for (int i = 0; i < 1000; ++i) rec.record(event("x"));
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(rec.events().size(), 64u);
  EXPECT_EQ(rec.recorded(), 4000u);
  EXPECT_EQ(rec.dropped(), 4000u - 64u);
}

TEST(Span, RecordsNameCategoryArgAndDuration) {
  TraceRecorder rec(8);
  {
    Span span("build", "planner", &rec);
    ASSERT_TRUE(span.active());
    span.set_arg("key=1");
  }
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "build");
  EXPECT_EQ(events[0].cat, "planner");
  EXPECT_EQ(events[0].arg, "key=1");
  EXPECT_EQ(events[0].tid, current_tid());
}

TEST(Span, MeasuresElapsedTime) {
  TraceRecorder rec(8);
  {
    Span span("sleep", "", &rec);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(rec.events().size(), 1u);
  EXPECT_GE(rec.events()[0].dur_ns, 4'000'000u);
}

TEST(Span, DisabledTelemetryRecordsNothing) {
  TraceRecorder rec(8);
  set_enabled(false);
  {
    Span span("invisible", "", &rec);
    EXPECT_FALSE(span.active());
    span.set_arg("ignored");
  }
  set_enabled(true);
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.recorded(), 0u);
}

TEST(Span, NestedSpansBothRecorded) {
  TraceRecorder rec(8);
  {
    Span outer("outer", "", &rec);
    { Span inner("inner", "", &rec); }
  }
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "inner");  // inner closes first
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_LE(events[1].ts_ns, events[0].ts_ns);
}

TEST(ScopedTimer, ObservesIntoHistogram) {
  Histogram h(default_latency_buckets_ns());
  { const ScopedTimer timer(h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
}

TEST(ScopedTimer, DisabledTelemetrySkipsObservation) {
  Histogram h(default_latency_buckets_ns());
  set_enabled(false);
  { const ScopedTimer timer(h); }
  set_enabled(true);
  EXPECT_EQ(h.count(), 0u);
}

TEST(CurrentTid, StablePerThreadDistinctAcross) {
  const std::uint32_t mine = current_tid();
  EXPECT_EQ(current_tid(), mine);
  std::uint32_t other = mine;
  std::thread([&other] { other = current_tid(); }).join();
  EXPECT_NE(other, mine);
}

}  // namespace
}  // namespace logpc::obs
