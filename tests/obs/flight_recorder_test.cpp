#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

/// Tests of the run-profile flight recorder: ring bounds and eviction
/// accounting, anomaly tagging against the residual threshold, the
/// logpc_profile_* metrics, and the summary the introspection page serves.

namespace logpc::obs {
namespace {

RunProfile profile_with(double residual, std::uint64_t critical_ns = 1000,
                        const std::string& label = "bcast") {
  RunProfile p;
  p.label = label;
  p.P = 4;
  p.wall_ns = critical_ns;
  p.critical_path_ns = critical_ns;
  p.predicted_ns = 900;  // > 0, so the threshold applies
  p.residual = residual;
  return p;
}

TEST(FlightRecorder, RetainsLastNAndCountsDrops) {
  MetricsRegistry reg;
  FlightRecorder rec({.capacity = 3, .registry = &reg});
  for (int i = 0; i < 5; ++i) {
    rec.record(profile_with(0.0, 100 + static_cast<std::uint64_t>(i),
                            "run-" + std::to_string(i)));
  }
  const auto kept = rec.profiles();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0]->label, "run-2");  // oldest two evicted
  EXPECT_EQ(kept[2]->label, "run-4");
  ASSERT_NE(rec.last(), nullptr);
  EXPECT_EQ(rec.last()->label, "run-4");

  const auto s = rec.summary();
  EXPECT_EQ(s.recorded, 5u);
  EXPECT_EQ(s.dropped, 2u);
  EXPECT_EQ(s.retained, 3u);
  EXPECT_EQ(s.last_critical_path_ns, 104u);
}

TEST(FlightRecorder, TagsAnomaliesPastTheThreshold) {
  MetricsRegistry reg;
  FlightRecorder rec({.capacity = 8, .residual_threshold = 0.5,
                      .registry = &reg});
  EXPECT_FALSE(rec.record(profile_with(0.2))->anomalous);
  EXPECT_FALSE(rec.record(profile_with(-0.49))->anomalous);
  EXPECT_TRUE(rec.record(profile_with(0.7, 2000, "slow"))->anomalous);
  EXPECT_TRUE(rec.record(profile_with(-0.8))->anomalous);  // |residual|

  ASSERT_NE(rec.last_anomaly(), nullptr);
  EXPECT_EQ(rec.last_anomaly()->residual, -0.8);
  EXPECT_EQ(rec.summary().anomalies, 2u);
}

TEST(FlightRecorder, ZeroPredictionNeverAnomalous) {
  MetricsRegistry reg;
  FlightRecorder rec({.capacity = 2, .registry = &reg});
  RunProfile p = profile_with(99.0);
  p.predicted_ns = 0;  // no model fit (e.g. empty run): nothing to diverge from
  EXPECT_FALSE(rec.record(std::move(p))->anomalous);
  EXPECT_EQ(rec.summary().anomalies, 0u);
}

TEST(FlightRecorder, FeedsProfileMetrics) {
  MetricsRegistry reg;
  FlightRecorder rec({.capacity = 4, .registry = &reg});
  rec.record(profile_with(0.1));
  rec.record(profile_with(0.9));
  rec.record(profile_with(0.2));

  bool saw_runs = false, saw_anomalies = false, saw_residual = false,
       saw_path = false;
  for (const MetricSnapshot& m : reg.snapshot()) {
    if (m.name == "logpc_profile_runs_total") {
      saw_runs = true;
      EXPECT_EQ(m.value, 3.0);
    } else if (m.name == "logpc_profile_anomalies_total") {
      saw_anomalies = true;
      EXPECT_EQ(m.value, 1.0);
    } else if (m.name == "logpc_profile_residual") {
      saw_residual = true;
      EXPECT_EQ(m.count, 3u);
    } else if (m.name == "logpc_profile_critical_path_ns") {
      saw_path = true;
      EXPECT_EQ(m.count, 3u);
    }
  }
  EXPECT_TRUE(saw_runs);
  EXPECT_TRUE(saw_anomalies);
  EXPECT_TRUE(saw_residual);
  EXPECT_TRUE(saw_path);
}

TEST(FlightRecorder, CapacityClampedToAtLeastOne) {
  MetricsRegistry reg;
  FlightRecorder rec({.capacity = 0, .registry = &reg});
  EXPECT_EQ(rec.capacity(), 1u);
  rec.record(profile_with(0.0, 1, "a"));
  rec.record(profile_with(0.0, 2, "b"));
  ASSERT_EQ(rec.profiles().size(), 1u);
  EXPECT_EQ(rec.profiles()[0]->label, "b");
}

}  // namespace
}  // namespace logpc::obs
