#include "api/communicator.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "sched/metrics.hpp"
#include "validate/checker.hpp"

namespace logpc::api {
namespace {

const Params kMachine{16, 8, 1, 4};

TEST(Communicator, BcastMatchesTheory) {
  const Communicator comm(kMachine);
  EXPECT_EQ(comm.size(), 16);
  const Schedule s = comm.bcast();
  EXPECT_TRUE(validate::is_valid(s)) << validate::check(s).summary();
  EXPECT_EQ(completion_time(s), comm.bcast_time());
  EXPECT_EQ(comm.bcast_time(), bcast::B_of_P(kMachine, 16));
}

TEST(Communicator, BcastFromNonzeroRoot) {
  const Communicator comm(kMachine);
  const Schedule s = comm.bcast(7);
  EXPECT_TRUE(validate::is_valid(s));
  EXPECT_EQ(s.initials()[0].proc, 7);
}

TEST(Communicator, KItemUsesPostalProjection) {
  const Communicator comm(kMachine);
  const auto r = comm.bcast_k(6);
  // Effective hop latency is L + 2o = 10.
  EXPECT_EQ(r.schedule.params(), Params::postal(16, 10));
  EXPECT_TRUE(validate::is_valid(r.schedule))
      << validate::check(r.schedule).summary();
  EXPECT_LE(r.completion, r.bounds.single_sending_upper);
}

TEST(Communicator, BufferedKItemMeetsBound) {
  const Communicator comm(kMachine);
  const auto r = comm.bcast_k_buffered(5);
  EXPECT_EQ(r.completion, r.bounds.single_sending_lower);
}

TEST(Communicator, ScatterAndGatherAreDualsWithSameCost) {
  const Communicator comm(kMachine);
  const Schedule sc = comm.scatter(3);
  const Schedule ga = comm.gather(3);
  EXPECT_EQ(sc.makespan(), comm.scatter_time());
  EXPECT_EQ(ga.makespan(), comm.gather_time());
  EXPECT_EQ(comm.scatter_time(), (16 - 2) * 4 + 8 + 2);
  // Scatter: root sends P-1 messages; gather: root receives P-1.
  EXPECT_EQ(send_counts(sc)[3], 15);
  EXPECT_EQ(receive_counts(ga, 0).size(), 16u);
  const auto check_sc =
      validate::check(sc, {.require_complete = false});
  EXPECT_TRUE(check_sc.ok()) << check_sc.summary();
  const auto check_ga =
      validate::check(ga, {.require_complete = false});
  EXPECT_TRUE(check_ga.ok()) << check_ga.summary();
}

TEST(Communicator, ScatterDeliversEachItemToItsDestination) {
  const Communicator comm(Params::postal(6, 3));
  const Schedule sc = comm.scatter(0);
  const auto avail = availability_matrix(sc);
  for (ProcId d = 1; d < 6; ++d) {
    EXPECT_NE(avail[static_cast<std::size_t>(d)][static_cast<std::size_t>(d)],
              kNever)
        << d;
  }
}

TEST(Communicator, ReduceMirrorsBcast) {
  const Communicator comm(kMachine);
  const auto plan = comm.reduce(2);
  EXPECT_EQ(plan.completion, comm.reduce_time());
  EXPECT_EQ(plan.root, 2);
}

TEST(Communicator, ReduceOperandsInvertsTime) {
  const Communicator comm(Params{16, 8, 1, 4});
  const Count n = 300;
  const auto plan = comm.reduce_operands(n);
  EXPECT_GE(plan.total_operands, n);
  EXPECT_EQ(plan.t, comm.reduce_operands_time(n));
}

TEST(Communicator, AlltoallMatchesBound) {
  const Communicator comm(kMachine);
  for (const int k : {1, 3}) {
    const Schedule s = comm.alltoall(k);
    EXPECT_EQ(completion_time(s), comm.alltoall_time(k));
    EXPECT_TRUE(
        validate::is_valid(s, {.allow_duplex_overhead = true}));
  }
  EXPECT_TRUE(bcast::personalized_complete(comm.alltoall_personalized()));
}

TEST(Communicator, AllreduceHalvesReduceBroadcast) {
  const Communicator comm(kMachine);
  const auto cs = comm.allreduce();
  EXPECT_EQ(cs.T, comm.allreduce_time());
  EXPECT_GE(cs.params.P, 16);  // f_T ring slots cover P
  // Execute with identity padding.
  std::vector<long long> vals(static_cast<std::size_t>(cs.params.P), 0);
  for (int i = 0; i < 16; ++i) vals[static_cast<std::size_t>(i)] = i + 1;
  const auto out = bcast::execute_combining<long long>(
      cs, vals, [](const long long& a, const long long& b) { return a + b; });
  for (const auto v : out) EXPECT_EQ(v, 16 * 17 / 2);
}

TEST(Communicator, SingleProcessorDegenerates) {
  const Communicator comm(Params{1, 3, 1, 2});
  EXPECT_EQ(comm.bcast_time(), 0);
  EXPECT_EQ(comm.scatter_time(), 0);
  EXPECT_EQ(comm.alltoall_time(), 0);
}

TEST(Communicator, RejectsBadRoots) {
  const Communicator comm(Params::postal(4, 2));
  EXPECT_THROW(comm.scatter(4), std::invalid_argument);
  EXPECT_THROW(comm.gather(-1), std::invalid_argument);
}

}  // namespace
}  // namespace logpc::api
