#!/usr/bin/env bash
# Perf smoke: build bench_kernels + bench_exec in Release, run the report
# grids (microbenchmarks skipped — the grids already time every cell), and
# diff the fresh BENCH_kernels.json speedups against the committed
# baseline (scripts/perf_diff.py: per-(op,dtype,payload) median speedup
# across the P sweep, +/-25% guardrail with a 6x absolute floor).
#
#   scripts/perf_smoke.sh                # run + diff
#   scripts/perf_smoke.sh --rebaseline   # run + fold into the baseline
#
# --rebaseline min-merges the fresh run into the committed baseline
# (per-cell minimum speedup), so the baseline converges on the slowest
# honest measurement per cell and load-spiked outliers never stick.
#
# The CI job running this is non-blocking: shared runners make absolute
# throughput noisy, so a failed diff is a signal to look, not a gate.
# BENCH_exec.json is produced for the artifact trail but not diffed — its
# wall-clock makespans depend on thread scheduling and have no stable
# per-cell ratio to guard.  bench_profile *does* gate (exit non-zero):
# it compares profile-on vs profile-off medians measured back-to-back on
# the same machine, so runner load cancels out of the ratio.  bench_tuning
# gates the same way (tuned-vs-fixed and warm plan_tuned overhead are
# same-machine ratios) and its decision-table winners are diffed against
# bench/baselines/BENCH_tuning.json as a non-blocking warning.
set -euo pipefail
cd "$(dirname "$0")/.."

REBASELINE=0
for arg in "$@"; do
  case "$arg" in
    --rebaseline) REBASELINE=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

JOBS="${JOBS:-$(nproc)}"
BUILD=build-perf
BASELINE=bench/baselines/BENCH_kernels.json
# BENCH_*.json land at the repo root by default so the artifact trail sits
# next to the sources that produced it; override with LOGPC_BENCH_DIR.
OUT="${LOGPC_BENCH_DIR:-.}"
mkdir -p "$OUT"

echo "=== perf smoke: Release build ($BUILD/) ==="
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j "$JOBS" \
  --target bench_kernels bench_exec bench_service bench_loadgen \
  bench_profile bench_plan_cache bench_tuning

echo
echo "=== bench_kernels ==="
LOGPC_BENCH_DIR="$OUT" "./$BUILD/bench/bench_kernels" \
  --benchmark_filter='^$' 2>/dev/null

echo
echo "=== bench_exec ==="
LOGPC_BENCH_DIR="$OUT" "./$BUILD/bench/bench_exec" \
  --benchmark_filter='^$' 2>/dev/null

echo
echo "=== bench_service ==="
# Sustained service throughput (warm daemon vs cold per-run engines).
# Artifact-only like bench_exec: absolute req/s moves with runner load, so
# BENCH_throughput.json records the trajectory without gating.
LOGPC_BENCH_DIR="$OUT" "./$BUILD/bench/bench_service" \
  --benchmark_filter='^$' 2>/dev/null

echo
echo "=== bench_loadgen --smoke ==="
# High-throughput path: fusion batching and the segmented pipeline under
# sustained load.  Gates on its internal floor (fused >= unfused); the
# LOGPC_BENCH_MERGE flag appends its entries to the BENCH_throughput.json
# bench_service just wrote instead of overwriting it.
LOGPC_BENCH_DIR="$OUT" LOGPC_BENCH_MERGE=1 \
  "./$BUILD/bench/bench_loadgen" --smoke

echo
echo "=== bench_profile ==="
# Always-on profiling overhead on the warm serving path.  This one gates:
# profile-on vs profile-off is a same-machine ratio, so it is stable even
# on loaded runners; a breach means obs::analyze got expensive.
LOGPC_BENCH_DIR="$OUT" "./$BUILD/bench/bench_profile"

echo
echo "=== bench_plan_cache (million-rank smoke) ==="
# Plan-cache grids plus the implicit-plan acceptance gate: building the
# O(log P) generator form must beat materializing the IR by >= 100x at
# P = 2^20, and planning + structurally simulating a 1M-rank broadcast
# must succeed.  Gates (exit non-zero): both checks are same-machine
# ratios / pass-fail sweeps, so runner load does not destabilise them.
LOGPC_BENCH_DIR="$OUT" "./$BUILD/bench/bench_plan_cache" \
  --benchmark_filter='^$' 2>/dev/null

echo
echo "=== bench_tuning (auto-tuner acceptance) ==="
# Runs the real-engine tuning grid and gates (exit non-zero) on two
# same-machine ratios: tuned per-segment selection must beat the best
# single fixed schedule by >= 10% on >= 2 segments, and the warm
# Planner::plan_tuned fast path must stay within 5% of a plain plan()
# cache hit.  Also drops decision_table.snap next to the json — the
# artifact a deploy would install via Planner::set_decision_table.
LOGPC_BENCH_DIR="$OUT" "./$BUILD/bench/bench_tuning"

TUNING_BASELINE=bench/baselines/BENCH_tuning.json
if [[ "$REBASELINE" == 1 || ! -f "$TUNING_BASELINE" ]]; then
  mkdir -p "$(dirname "$TUNING_BASELINE")"
  cp "$OUT/BENCH_tuning.json" "$TUNING_BASELINE"
  echo "perf_smoke: tuning baseline written to $TUNING_BASELINE"
else
  echo
  echo "=== decision-table winners vs $TUNING_BASELINE ==="
  # Winner flips are informational (always exit 0): bench_tuning already
  # gated the quantities that must hold; this diff just surfaces when the
  # measured regime map moved.
  python3 scripts/perf_diff.py --tuning "$TUNING_BASELINE" \
    "$OUT/BENCH_tuning.json"
fi

if [[ "$REBASELINE" == 1 || ! -f "$BASELINE" ]]; then
  mkdir -p "$(dirname "$BASELINE")"
  if [[ -f "$BASELINE" ]]; then
    python3 - "$BASELINE" "$OUT/BENCH_kernels.json" <<'EOF'
import json, sys
base_path, fresh_path = sys.argv[1], sys.argv[2]
base = json.load(open(base_path))
fresh = json.load(open(fresh_path))
def key(e):
    p = e["params"]
    return (p["op"], p["dtype"], p["payload"], p["P"])
cells = {key(e): e for e in base["entries"] if e.get("name") == "fold_chain"}
for e in fresh["entries"]:
    if e.get("name") != "fold_chain":
        continue
    k = key(e)
    if k not in cells or e["speedup"] < cells[k]["speedup"]:
        cells[k] = e
rest = [e for e in base["entries"] if e.get("name") != "fold_chain"]
base["entries"] = sorted(
    cells.values(),
    key=lambda e: (e["params"]["op"], e["params"]["dtype"],
                   int(e["params"]["payload"]), int(e["params"]["P"]))) + rest
json.dump(base, open(base_path, "w"), indent=1)
print(f"perf_smoke: min-merged {len(cells)} cells into baseline")
EOF
  else
    cp "$OUT/BENCH_kernels.json" "$BASELINE"
  fi
  echo
  echo "perf_smoke: baseline written to $BASELINE"
  exit 0
fi

echo
echo "=== diff vs $BASELINE ==="
python3 scripts/perf_diff.py "$BASELINE" "$OUT/BENCH_kernels.json" \
  --tolerance 0.25
