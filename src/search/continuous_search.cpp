#include "search/continuous_search.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <vector>

namespace logpc::search {

namespace {

using bcast::BroadcastTree;
using bcast::ContinuousResult;
using bcast::SolveStatus;

// One class of interchangeable internal nodes of the base tree: same delay,
// hence same out-degree and same number of trailing leaf children.
struct NodeClass {
  Time delay = 0;
  int trailing_leaves = 0;        // per node: prunable children
  std::vector<int> node_indices;  // base-tree nodes in this class
};

class PruningSearch {
 public:
  PruningSearch(const BroadcastTree& base, int target_nodes,
                std::size_t max_candidates, std::uint64_t word_budget)
      : base_(base),
        need_remove_(base.size() - target_nodes),
        max_candidates_(max_candidates),
        word_budget_(word_budget) {}

  ContinuousResult run() {
    if (need_remove_ < 0) {
      throw std::invalid_argument("plan_with_slack: target larger than base");
    }
    collect_classes();
    removals_.assign(static_cast<std::size_t>(base_.size()), 0);
    result_.status = SolveStatus::kInfeasible;
    dfs(0, need_remove_);
    return std::move(result_);
  }

 private:
  const BroadcastTree& base_;
  int need_remove_;
  std::size_t max_candidates_;
  std::uint64_t word_budget_;
  std::vector<NodeClass> classes_;
  std::vector<int> removals_;  // per base node: trailing leaves to cut
  std::size_t candidates_tried_ = 0;
  ContinuousResult result_;

  void collect_classes() {
    const Time tL = base_.params().L;
    const Time horizon = base_.makespan();
    std::map<Time, NodeClass> by_delay;
    for (int v = 0; v < base_.size(); ++v) {
      const auto& node = base_.node(v);
      if (node.children.empty()) continue;
      int trailing = 0;
      for (auto it = node.children.rbegin(); it != node.children.rend();
           ++it) {
        if (!base_.node(*it).children.empty()) break;
        ++trailing;
      }
      auto& cls = by_delay[node.label];
      cls.delay = node.label;
      cls.trailing_leaves = trailing;
      cls.node_indices.push_back(v);
    }
    (void)tL;
    (void)horizon;
    // Big blocks first: the paper prunes high-degree nodes preferentially.
    for (auto& [delay, cls] : by_delay) classes_.push_back(std::move(cls));
    std::sort(classes_.begin(), classes_.end(),
              [](const NodeClass& a, const NodeClass& b) {
                return a.delay < b.delay;  // low delay = high degree first
              });
  }

  // Assign removals to class `ci` onward; nodes within a class are
  // interchangeable, so removal vectors are non-increasing within a class.
  bool dfs(std::size_t ci, int remaining) {
    if (candidates_tried_ >= max_candidates_) return false;
    if (ci == classes_.size()) {
      if (remaining != 0) return false;
      return try_candidate();
    }
    const auto& cls = classes_[ci];
    return assign_in_class(ci, 0, cls.trailing_leaves, remaining);
  }

  bool assign_in_class(std::size_t ci, std::size_t ni, int max_removal,
                       int remaining) {
    if (candidates_tried_ >= max_candidates_) return false;
    const auto& cls = classes_[ci];
    if (ni == cls.node_indices.size()) return dfs(ci + 1, remaining);
    const int node = cls.node_indices[ni];
    // Try removing more first (the paper's recipe removes aggressively from
    // the biggest blocks); cap by non-increasing order within the class.
    for (int x = std::min(max_removal, remaining); x >= 0; --x) {
      removals_[static_cast<std::size_t>(node)] = x;
      if (assign_in_class(ci, ni + 1, x, remaining - x)) return true;
    }
    removals_[static_cast<std::size_t>(node)] = 0;
    return false;
  }

  bool try_candidate() {
    ++candidates_tried_;
    // Build the pruned parents array in base-index order.
    std::vector<bool> removed(static_cast<std::size_t>(base_.size()), false);
    for (int v = 0; v < base_.size(); ++v) {
      const int x = removals_[static_cast<std::size_t>(v)];
      const auto& children = base_.node(v).children;
      for (int j = 0; j < x; ++j) {
        removed[static_cast<std::size_t>(
            children[children.size() - 1 - static_cast<std::size_t>(j)])] =
            true;
      }
    }
    std::vector<int> new_index(static_cast<std::size_t>(base_.size()), -1);
    std::vector<int> parents;
    for (int v = 0; v < base_.size(); ++v) {
      if (removed[static_cast<std::size_t>(v)]) continue;
      new_index[static_cast<std::size_t>(v)] =
          static_cast<int>(parents.size());
      const int bp = base_.node(v).parent;
      parents.push_back(bp < 0 ? -1
                               : new_index[static_cast<std::size_t>(bp)]);
    }
    const BroadcastTree pruned =
        BroadcastTree::from_parents(base_.params(), parents);
    auto res = bcast::plan_from_tree(pruned, word_budget_);
    result_.nodes_explored += res.nodes_explored;
    if (res.status == SolveStatus::kSolved) {
      result_.status = SolveStatus::kSolved;
      result_.plan = std::move(res.plan);
      return true;
    }
    return false;
  }
};

}  // namespace

ContinuousResult plan_with_slack(Time L, int m, int slack,
                                 std::size_t max_candidates,
                                 std::uint64_t word_budget) {
  if (L < 1 || m < 1 || slack < 0) {
    throw std::invalid_argument("plan_with_slack: bad arguments");
  }
  if (m > (1 << 18)) {
    throw std::invalid_argument("plan_with_slack: m too large");
  }
  const Params tree_params = Params::postal(m, L);
  const Time t = bcast::B_of_P(tree_params, m);
  const Count base_size = bcast::reachable(tree_params, t + slack);
  if (base_size > (Count{1} << 20)) {
    throw std::invalid_argument("plan_with_slack: base tree too large");
  }
  const BroadcastTree base = BroadcastTree::optimal(
      tree_params, static_cast<int>(base_size));
  return PruningSearch(base, m, max_candidates, word_budget).run();
}

ContinuousResult best_continuous_plan(Time L, int m) {
  auto res = plan_with_slack(L, m, 0);
  if (res.status == SolveStatus::kSolved) return res;
  for (int slack = 1; slack <= static_cast<int>(L); ++slack) {
    auto pruned = plan_with_slack(L, m, slack);
    if (pruned.status == SolveStatus::kSolved) return pruned;
  }
  return res;
}

}  // namespace logpc::search
