#include "validate/checker.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "sched/metrics.hpp"

namespace logpc::validate {

namespace {

class Checker {
 public:
  Checker(const Schedule& s, const CheckOptions& opts) : s_(s), opts_(opts) {}

  CheckResult run() {
    if (!check_ids()) return std::move(result_);
    check_holdings();
    check_gaps_and_overheads();
    check_latency_and_buffers();
    if (opts_.forbid_duplicate_receive) check_duplicates();
    if (opts_.check_capacity) check_capacity();
    if (opts_.require_complete) check_completeness();
    return std::move(result_);
  }

 private:
  const Schedule& s_;
  const CheckOptions& opts_;
  CheckResult result_;
  bool truncated_ = false;

  bool add(Rule rule, std::string detail) {
    if (truncated_) return false;
    if (opts_.max_violations != 0 &&
        result_.violations.size() >= opts_.max_violations) {
      truncated_ = true;
      return false;
    }
    result_.violations.push_back(Violation{rule, std::move(detail)});
    return true;
  }

  static std::string op_str(const Schedule& s, const SendOp& op) {
    std::ostringstream os;
    os << "item " << op.item << " P" << op.from << "->P" << op.to << " @t="
       << op.start << " (recv " << s.recv_start(op) << ")";
    return os.str();
  }

  // Structural sanity; the remaining checks index by id, so bail out on
  // failure here.
  bool check_ids() {
    const int P = s_.params().P;
    const int K = s_.num_items();
    bool ok = true;
    for (const auto& init : s_.initials()) {
      if (init.proc < 0 || init.proc >= P) {
        add(Rule::kBadProcessor, "initial placement at P" +
                                     std::to_string(init.proc));
        ok = false;
      }
      if (init.item < 0 || init.item >= K) {
        add(Rule::kBadItem, "initial placement of item " +
                                std::to_string(init.item));
        ok = false;
      }
    }
    for (const auto& op : s_.sends()) {
      if (op.from < 0 || op.from >= P || op.to < 0 || op.to >= P) {
        add(Rule::kBadProcessor, op_str(s_, op));
        ok = false;
      }
      if (op.item < 0 || op.item >= K) {
        add(Rule::kBadItem, op_str(s_, op));
        ok = false;
      }
      if (op.from == op.to) {
        add(Rule::kSelfSend, op_str(s_, op));
        ok = false;
      }
    }
    return ok;
  }

  // Every send must be of an item its sender already holds.  Availability is
  // well-founded: an arrival strictly postdates its send start, so chains of
  // justification ground out in initial placements.
  void check_holdings() {
    const auto avail = availability_matrix(s_);
    for (const auto& op : s_.sends()) {
      const Time have = avail[static_cast<std::size_t>(op.item)]
                             [static_cast<std::size_t>(op.from)];
      if (have == kNever || have > op.start) {
        add(Rule::kItemNotHeld, op_str(s_, op));
      }
    }
  }

  void check_gaps_and_overheads() {
    const Time g = s_.params().g;
    const Time o = s_.params().o;
    const auto P = static_cast<std::size_t>(s_.params().P);
    std::vector<std::vector<Time>> sends(P), recvs(P);
    for (const auto& op : s_.sends()) {
      sends[static_cast<std::size_t>(op.from)].push_back(op.start);
      recvs[static_cast<std::size_t>(op.to)].push_back(s_.recv_start(op));
    }
    for (std::size_t p = 0; p < P; ++p) {
      std::sort(sends[p].begin(), sends[p].end());
      std::sort(recvs[p].begin(), recvs[p].end());
      for (std::size_t i = 1; i < sends[p].size(); ++i) {
        if (sends[p][i] - sends[p][i - 1] < g) {
          add(Rule::kSendGap, "P" + std::to_string(p) + " sends at t=" +
                                  std::to_string(sends[p][i - 1]) + " and t=" +
                                  std::to_string(sends[p][i]));
        }
      }
      for (std::size_t i = 1; i < recvs[p].size(); ++i) {
        if (recvs[p][i] - recvs[p][i - 1] < g) {
          add(Rule::kRecvGap, "P" + std::to_string(p) + " receives at t=" +
                                  std::to_string(recvs[p][i - 1]) + " and t=" +
                                  std::to_string(recvs[p][i]));
        }
      }
      if (o > 0 && !opts_.allow_duplex_overhead) {
        // Send and receive overheads both occupy the processor; they may
        // interleave but not overlap.
        for (const Time st : sends[p]) {
          for (const Time rt : recvs[p]) {
            if (st < rt + o && rt < st + o) {
              add(Rule::kOverheadOverlap,
                  "P" + std::to_string(p) + " send@" + std::to_string(st) +
                      " vs recv@" + std::to_string(rt));
            }
          }
        }
      }
    }
  }

  void check_latency_and_buffers() {
    const Time o = s_.params().o;
    const Time L = s_.params().L;
    // Buffer occupancy events per processor: +1 at arrival, -1 at receive.
    std::map<ProcId, std::vector<std::pair<Time, int>>> events;
    for (const auto& op : s_.sends()) {
      const Time arrival = op.start + o + L;
      const Time recv = s_.recv_start(op);
      if (!opts_.buffered) {
        if (recv != arrival) add(Rule::kLatency, op_str(s_, op));
      } else if (recv < arrival) {
        add(Rule::kLatency, op_str(s_, op) + " received before arrival");
      } else if (opts_.buffer_limit >= 0) {
        events[op.to].emplace_back(arrival, +1);
        events[op.to].emplace_back(recv, -1);
      }
    }
    if (opts_.buffered && opts_.buffer_limit >= 0) {
      for (auto& [proc, evs] : events) {
        // At equal times, drain before filling: a receive at t frees the
        // slot for an arrival at t.
        std::sort(evs.begin(), evs.end());
        int depth = 0;
        int worst = 0;
        for (const auto& [t, d] : evs) {
          depth += d;
          worst = std::max(worst, depth);
        }
        if (worst > opts_.buffer_limit) {
          add(Rule::kBufferOverflow,
              "P" + std::to_string(proc) + " holds " + std::to_string(worst) +
                  " buffered items (limit " +
                  std::to_string(opts_.buffer_limit) + ")");
        }
      }
    }
  }

  void check_duplicates() {
    std::set<std::pair<ProcId, ItemId>> seen;
    for (const auto& op : s_.sends()) {
      if (!seen.insert({op.to, op.item}).second) {
        add(Rule::kDuplicateReceive, op_str(s_, op));
      }
    }
  }

  // Sweep the wire intervals [start+o, start+o+L): at every instant, at most
  // ceil(L/g) messages may be in transit from any processor, and at most
  // that many to any processor.
  void check_capacity() {
    const Time o = s_.params().o;
    const Time L = s_.params().L;
    const long cap = s_.params().capacity();
    auto sweep = [&](bool by_sender) {
      std::map<ProcId, std::vector<std::pair<Time, int>>> events;
      for (const auto& op : s_.sends()) {
        const ProcId key = by_sender ? op.from : op.to;
        events[key].emplace_back(op.start + o, +1);
        events[key].emplace_back(op.start + o + L, -1);
      }
      for (auto& [proc, evs] : events) {
        std::sort(evs.begin(), evs.end());
        long depth = 0;
        for (const auto& [t, d] : evs) {
          depth += d;
          if (depth > cap) {
            add(Rule::kCapacity,
                std::string(by_sender ? "from" : "to") + " P" +
                    std::to_string(proc) + " at t=" + std::to_string(t) +
                    ": " + std::to_string(depth) + " in transit (cap " +
                    std::to_string(cap) + ")");
            break;  // one report per processor/direction is enough
          }
        }
      }
    };
    sweep(true);
    // The modified model of Section 3.5 lets several items enter one
    // processor's buffer in a step ("more than one item may enter a
    // processor's buffer at a given time step"), replacing the receive-side
    // capacity bound with the buffer-occupancy bound checked above.
    if (!opts_.buffered) sweep(false);
  }

  void check_completeness() {
    const auto avail = availability_matrix(s_);
    for (std::size_t item = 0; item < avail.size(); ++item) {
      for (std::size_t proc = 0; proc < avail[item].size(); ++proc) {
        if (avail[item][proc] == kNever) {
          if (!add(Rule::kIncomplete, "item " + std::to_string(item) +
                                          " never reaches P" +
                                          std::to_string(proc))) {
            return;
          }
        }
      }
    }
  }
};

}  // namespace

CheckResult check(const Schedule& s, CheckOptions options) {
  s.params().require_valid();
  return Checker(s, options).run();
}

bool is_valid(const Schedule& s, CheckOptions options) {
  return check(s, options).ok();
}

std::vector<std::vector<DeliveryRecord>> planned_deliveries(
    const Schedule& plan) {
  std::vector<std::vector<DeliveryRecord>> out(
      static_cast<std::size_t>(plan.params().P));
  // (available cycle, schedule position) orders each processor's receives;
  // position breaks ties deterministically for o == 0 machines.
  std::vector<std::vector<std::pair<std::pair<Time, std::size_t>,
                                    DeliveryRecord>>>
      keyed(out.size());
  const auto& sends = plan.sends();
  for (std::size_t i = 0; i < sends.size(); ++i) {
    const SendOp& op = sends[i];
    keyed[static_cast<std::size_t>(op.to)].push_back(
        {{plan.available_at(op), i}, DeliveryRecord{op.from, op.item}});
  }
  for (std::size_t p = 0; p < out.size(); ++p) {
    std::sort(keyed[p].begin(), keyed[p].end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    out[p].reserve(keyed[p].size());
    for (const auto& [key, rec] : keyed[p]) out[p].push_back(rec);
  }
  return out;
}

CheckResult check_delivery_order(
    const Schedule& plan,
    const std::vector<std::vector<DeliveryRecord>>& observed) {
  CheckResult result;
  const auto expected = planned_deliveries(plan);
  auto add = [&result](std::string detail) {
    result.violations.push_back(
        Violation{Rule::kDeliveryOrder, std::move(detail)});
  };
  if (observed.size() != expected.size()) {
    add("observed " + std::to_string(observed.size()) +
        " processors, plan has " + std::to_string(expected.size()));
    return result;
  }
  for (std::size_t p = 0; p < expected.size(); ++p) {
    const auto& exp = expected[p];
    const auto& obs = observed[p];
    if (exp.size() != obs.size()) {
      add("P" + std::to_string(p) + ": " + std::to_string(obs.size()) +
          " receptions executed, plan prescribes " +
          std::to_string(exp.size()));
      continue;
    }
    for (std::size_t i = 0; i < exp.size(); ++i) {
      if (!(exp[i] == obs[i])) {
        add("P" + std::to_string(p) + " reception " + std::to_string(i) +
            ": got item " + std::to_string(obs[i].item) + " from P" +
            std::to_string(obs[i].from) + ", plan says item " +
            std::to_string(exp[i].item) + " from P" +
            std::to_string(exp[i].from));
      }
    }
  }
  return result;
}

CheckResult check_exactly_once(
    const std::vector<std::vector<DeliveryRecord>>& observed) {
  CheckResult result;
  for (std::size_t p = 0; p < observed.size(); ++p) {
    const auto& obs = observed[p];
    for (std::size_t i = 0; i < obs.size(); ++i) {
      for (std::size_t j = i + 1; j < obs.size(); ++j) {
        if (obs[i] == obs[j]) {
          result.violations.push_back(Violation{
              Rule::kDuplicateReceive,
              "P" + std::to_string(p) + " accepted item " +
                  std::to_string(obs[i].item) + " from P" +
                  std::to_string(obs[i].from) + " twice (receptions " +
                  std::to_string(i) + " and " + std::to_string(j) +
                  ") — a retransmitted duplicate leaked through"});
        }
      }
    }
  }
  return result;
}

}  // namespace logpc::validate
