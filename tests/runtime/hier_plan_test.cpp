#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "bcast/hierarchical.hpp"
#include "runtime/plan_key.hpp"
#include "runtime/planner.hpp"
#include "runtime/snapshot.hpp"

namespace logpc::runtime {
namespace {

const Params kIntra{12, 2, 1, 2};
const Params kCross{0, 16, 3, 10};

HierParams machine() {
  return HierParams::uniform(12, 3, kIntra, kCross);
}

TEST(HierPlanKey, HierarchicalFactoryCarriesTheTopology) {
  const PlanKey key = PlanKey::hierarchical(machine(), 5);
  EXPECT_EQ(key.problem, Problem::kHierarchicalBroadcast);
  EXPECT_EQ(key.params, kIntra);
  EXPECT_EQ(key.root, 5);
  EXPECT_EQ(key.clusters, 3);
  EXPECT_EQ(key.cross_L, 16);
  EXPECT_EQ(key.cross_o, 3);
  EXPECT_EQ(key.cross_g, 10);
  EXPECT_EQ(key.hier_params(), machine());
}

TEST(HierPlanKey, MakeIsIdempotent) {
  const PlanKey key = PlanKey::hierarchical(machine(), 5);
  EXPECT_EQ(PlanKey::make(key.problem, key.params, key.k, key.root, key.mask,
                          key.clusters, key.cross_L, key.cross_o, key.cross_g),
            key);
}

TEST(HierPlanKey, OneClusterDegeneratesToFlatBroadcast) {
  const PlanKey key = PlanKey::make(Problem::kHierarchicalBroadcast, kIntra,
                                    1, 2, 0, /*clusters=*/1, 16, 3, 10);
  EXPECT_EQ(key, PlanKey::broadcast(kIntra, 2));
  EXPECT_EQ(key.clusters, 0);
}

TEST(HierPlanKey, AllSingletonsDegeneratesToCrossBroadcast) {
  const PlanKey key = PlanKey::make(Problem::kHierarchicalBroadcast, kIntra,
                                    1, 2, 0, /*clusters=*/12, 16, 3, 10);
  Params cross = kCross;
  cross.P = 12;
  EXPECT_EQ(key, PlanKey::broadcast(cross, 2));
}

TEST(HierPlanKey, RejectsIllFormedTopologies) {
  const auto hier = Problem::kHierarchicalBroadcast;
  // clusters outside [1, P].
  EXPECT_THROW((void)PlanKey::make(hier, kIntra, 1, 0, 0, 13, 16, 3, 10),
               std::invalid_argument);
  EXPECT_THROW((void)PlanKey::make(hier, kIntra, 1, 0, 0, -1, 16, 3, 10),
               std::invalid_argument);
  // Invalid cross class (L must be >= 1).
  EXPECT_THROW((void)PlanKey::make(hier, kIntra, 1, 0, 0, 3, 0, 3, 10),
               std::invalid_argument);
  // Membership masks are topology-blind.
  EXPECT_THROW((void)PlanKey::make(hier, kIntra, 1, 0, 0xfff, 3, 16, 3, 10),
               std::invalid_argument);
  // Topology fields on a flat problem.
  EXPECT_THROW((void)PlanKey::make(Problem::kBroadcast, kIntra, 1, 0, 0, 3,
                                   16, 3, 10),
               std::invalid_argument);
  // Non-uniform partitions have no canonical key spelling.
  HierParams interleaved = machine();
  interleaved.cluster_of = {0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2};
  EXPECT_THROW((void)PlanKey::hierarchical(interleaved, 0),
               std::invalid_argument);
}

TEST(HierPlanKey, HierParamsThrowsOnFlatKeys) {
  EXPECT_THROW((void)PlanKey::broadcast(kIntra).hier_params(),
               std::logic_error);
}

TEST(HierPlanKey, TopologyDistinguishesKeys) {
  const PlanKey a = PlanKey::hierarchical(machine(), 0);
  PlanKey b = a;
  b.clusters = 4;
  PlanKey c = a;
  c.cross_g = 11;
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
  EXPECT_NE(a, PlanKey::broadcast(kIntra));
  // The printed form shows the topology.
  EXPECT_NE(a.to_string().find("clusters=3"), std::string::npos);
}

TEST(HierPlanner, BuildsTheTwoLevelSchedule) {
  Planner planner;
  const PlanKey key = PlanKey::hierarchical(machine(), 4);
  const PlanPtr plan = planner.plan(key);
  const auto expect = bcast::hierarchical_broadcast(machine(), 4);
  EXPECT_EQ(plan->schedule, expect.schedule);
  EXPECT_EQ(plan->completion, expect.completion);
  EXPECT_NE(plan->method.find("hierarchical"), std::string::npos);
  // Cached: the second request is the same shared entry.
  EXPECT_EQ(planner.plan(key), plan);
  EXPECT_EQ(planner.builds(), 1u);
}

TEST(HierPlanner, SnapshotRoundTripsHierarchicalPlans) {
  Planner planner;
  const PlanKey key = PlanKey::hierarchical(machine(), 4);
  (void)planner.plan(key);
  (void)planner.plan(PlanKey::broadcast(kIntra, 1));  // a flat plan alongside

  std::stringstream stream;
  const std::size_t written = save_snapshot(planner.cache(), stream);
  EXPECT_EQ(written, 2u);

  PlanCache loaded(64, 4);
  EXPECT_EQ(load_snapshot(loaded, stream), written);
  const PlanPtr restored = loaded.get(key);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->key, key);
  const PlanPtr original = planner.plan(key);
  EXPECT_EQ(restored->schedule, original->schedule);
  EXPECT_EQ(restored->completion, original->completion);
  EXPECT_EQ(restored->method, original->method);
}

TEST(PlannerOptions, RejectsDegenerateConfiguration) {
  Planner::Options zero_capacity;
  zero_capacity.cache_capacity = 0;
  EXPECT_THROW(Planner{zero_capacity}, std::invalid_argument);

  Planner::Options zero_shards;
  zero_shards.cache_shards = 0;
  EXPECT_THROW(Planner{zero_shards}, std::invalid_argument);

  Planner::Options zero_threshold;
  zero_threshold.materialize_threshold = 0;
  EXPECT_THROW(Planner{zero_threshold}, std::invalid_argument);

  // The smallest legal configuration constructs.
  Planner::Options minimal;
  minimal.cache_capacity = 1;
  minimal.cache_shards = 1;
  minimal.materialize_threshold = 1;
  EXPECT_NO_THROW(Planner{minimal});
}

}  // namespace
}  // namespace logpc::runtime
