#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "bcast/reduction.hpp"
#include "bench_util.hpp"
#include "exec/arena.hpp"
#include "exec/engine.hpp"
#include "exec/kernels.hpp"
#include "exec/program.hpp"

/// Fast-lane reproduction bench: typed SIMD combine kernels vs the scalar
/// generic reference, measured on the exact workload the engine runs — a
/// reduction root's fold chain of P-1 payloads — across a payload × P ×
/// (op, dtype) grid.  Writes BENCH_kernels.json with per-cell throughput
/// and speedup; scripts/perf_smoke.sh diffs those speedups against the
/// committed baseline.
///
/// The acceptance bar for this PR: >= 4x kernel-vs-generic throughput for
/// sum/f32 and sum/i64 at payloads >= 64 KiB on >= 8 ranks.  The fold
/// chain is measured single-threaded on arena-aligned buffers (the
/// engine's own staging), so the ratio isolates the combine lane from
/// thread scheduling noise.

namespace {

using namespace logpc;
using namespace logpc::exec;
using Clock = std::chrono::steady_clock;

const std::size_t kPayloads[] = {64, 1024, 64 * 1024, 1 << 20, 16 << 20};
const int kRanks[] = {2, 4, 8, 16};
const KernelSpec kSpecs[] = {
    {Op::kSum, DType::kF32},
    {Op::kSum, DType::kI64},
    {Op::kMin, DType::kI32},
    {Op::kMax, DType::kF64},
};

void fill_random(std::byte* p, std::size_t n, std::mt19937& rng, DType t) {
  if (t == DType::kF32) {
    std::uniform_real_distribution<float> d(-1000.0f, 1000.0f);
    for (std::size_t i = 0; i + sizeof(float) <= n; i += sizeof(float)) {
      const float v = d(rng);
      std::memcpy(p + i, &v, sizeof v);
    }
  } else if (t == DType::kF64) {
    std::uniform_real_distribution<double> d(-1000.0, 1000.0);
    for (std::size_t i = 0; i + sizeof(double) <= n; i += sizeof(double)) {
      const double v = d(rng);
      std::memcpy(p + i, &v, sizeof v);
    }
  } else {
    std::uniform_int_distribution<int> d(0, 255);
    for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<std::byte>(d(rng));
  }
}

struct CellResult {
  double kernel_gbps = 0;
  double generic_gbps = 0;
  double speedup = 0;
};

/// Times one reduction-root fold chain — (P-1) folds of `payload` bytes —
/// through both lanes.  Iteration count adapts so each rep folds at least
/// ~24 MiB (or 3 iterations for the 16 MiB cells), and each lane takes
/// the best of three interleaved reps: on a shared host a single
/// preemption inside a short kernel window would otherwise skew the
/// ratio, and min-of-reps is the standard outlier-rejecting estimator
/// for throughput.
CellResult measure_cell(const KernelSpec& spec, std::size_t payload, int P,
                        std::mt19937& rng) {
  const std::size_t chain = static_cast<std::size_t>(P - 1);
  BufferArena arena(payload * (chain + 1) + 4096);
  std::byte* acc = arena.allocate(payload);
  std::vector<std::byte*> operands(chain);
  fill_random(acc, payload, rng, spec.dtype);
  for (auto& op : operands) {
    op = arena.allocate(payload);
    fill_random(op, payload, rng, spec.dtype);
  }
  Bytes acc_vec(payload);
  std::memcpy(acc_vec.data(), acc, payload);

  const std::size_t bytes_per_iter = payload * chain;
  const std::size_t iters = std::max<std::size_t>(
      3, (std::size_t{24} << 20) / std::max<std::size_t>(bytes_per_iter, 1));
  constexpr int kReps = 3;

  const KernelFn k = lookup(spec);
  const CombineFn g = generic_combine(spec);

  double kernel_s = 1e30;
  double generic_s = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = Clock::now();
    for (std::size_t it = 0; it < iters; ++it) {
      for (std::byte* op : operands) k(acc, op, payload);
    }
    const auto t1 = Clock::now();
    benchmark::DoNotOptimize(acc[0]);
    for (std::size_t it = 0; it < iters; ++it) {
      for (std::byte* op : operands) {
        g(acc_vec, std::span<const std::byte>(op, payload));
      }
    }
    const auto t2 = Clock::now();
    benchmark::DoNotOptimize(acc_vec.data());
    kernel_s =
        std::min(kernel_s, std::chrono::duration<double>(t1 - t0).count());
    generic_s =
        std::min(generic_s, std::chrono::duration<double>(t2 - t1).count());
  }

  const double total = static_cast<double>(bytes_per_iter) *
                       static_cast<double>(iters) / 1e9;
  CellResult r;
  r.kernel_gbps = total / std::max(kernel_s, 1e-12);
  r.generic_gbps = total / std::max(generic_s, 1e-12);
  r.speedup = r.kernel_gbps / std::max(r.generic_gbps, 1e-12);
  return r;
}

std::string human_size(std::size_t n) {
  if (n >= (1 << 20)) return std::to_string(n >> 20) + "MiB";
  if (n >= 1024) return std::to_string(n >> 10) + "KiB";
  return std::to_string(n) + "B";
}

void report() {
  bench::section("typed combine kernels vs generic reference (fold chain)");
  auto& json = bench::global_report("kernels");
  std::mt19937 rng(2026);

  bool bar_met = true;
  for (const KernelSpec& spec : kSpecs) {
    bench::Table t({"payload", "P", "kernel GB/s", "generic GB/s", "speedup"});
    for (const std::size_t payload : kPayloads) {
      for (const int P : kRanks) {
        const CellResult r = measure_cell(spec, payload, P, rng);
        char kbuf[32], gbuf[32], sbuf[32];
        std::snprintf(kbuf, sizeof kbuf, "%.2f", r.kernel_gbps);
        std::snprintf(gbuf, sizeof gbuf, "%.2f", r.generic_gbps);
        std::snprintf(sbuf, sizeof sbuf, "%.2fx", r.speedup);
        t.row(human_size(payload), P, kbuf, gbuf, sbuf);
        json.entry("fold_chain",
                   {{"op", op_name(spec.op)},
                    {"dtype", dtype_name(spec.dtype)},
                    {"payload", std::to_string(payload)},
                    {"P", std::to_string(P)}},
                   {{"kernel_gbps", r.kernel_gbps},
                    {"generic_gbps", r.generic_gbps},
                    {"speedup", r.speedup}});
        const bool bar_cell = spec.op == Op::kSum &&
                              (spec.dtype == DType::kF32 ||
                               spec.dtype == DType::kI64) &&
                              payload >= 64 * 1024 && P >= 8;
        if (bar_cell && r.speedup < 4.0) bar_met = false;
      }
    }
    bench::section(spec.name());
    t.print();
  }
  std::cout << "\nacceptance (>=4x for sum/f32 & sum/i64 at >=64KiB, P>=8): "
            << bench::ok(bar_met) << "\n";

  // Engine end-to-end subset: one reduction through each lane.  On a
  // shared/oversubscribed host the wall times are thread-scheduling noisy;
  // they are recorded for the trajectory, not gated.
  bench::section("engine end-to-end reduce (informational)");
  {
    const Params params{8, 4, 1, 2};
    const bcast::ReductionPlan plan = bcast::optimal_reduction(params, 0);
    const Program prog = compile_reduction(plan);
    const std::size_t payload = 1 << 20;
    std::vector<Bytes> values;
    for (int p = 0; p < params.P; ++p) {
      Bytes b(payload);
      fill_random(b.data(), payload, rng, DType::kF32);
      values.push_back(std::move(b));
    }
    const KernelSpec spec{Op::kSum, DType::kF32};
    Engine engine;
    (void)engine.run(prog, values, Combiner(spec));  // warm the pool
    const ExecReport generic_run =
        engine.run(prog, values, generic_combine(spec));
    const ExecReport typed_run = engine.run(prog, values, Combiner(spec));
    bench::Table t({"lane", "wall ms", "kernel folds", "arena KiB"});
    char g[32], k[32];
    std::snprintf(g, sizeof g, "%.3f",
                  static_cast<double>(generic_run.wall_ns) / 1e6);
    std::snprintf(k, sizeof k, "%.3f",
                  static_cast<double>(typed_run.wall_ns) / 1e6);
    t.row("generic", g, generic_run.kernel_folds,
          generic_run.arena_bytes >> 10);
    t.row("typed", k, typed_run.kernel_folds, typed_run.arena_bytes >> 10);
    t.print();
    json.entry("engine_reduce",
               {{"op", "sum"}, {"dtype", "f32"},
                {"payload", std::to_string(payload)},
                {"P", std::to_string(params.P)}},
               {{"generic_wall_ms",
                 static_cast<double>(generic_run.wall_ns) / 1e6},
                {"typed_wall_ms",
                 static_cast<double>(typed_run.wall_ns) / 1e6}});
  }
}

// --- microbenchmarks --------------------------------------------------------

void BM_KernelFold(benchmark::State& state) {
  const auto payload = static_cast<std::size_t>(state.range(0));
  const KernelSpec spec{Op::kSum, DType::kF32};
  const KernelFn k = lookup(spec);
  BufferArena arena(payload * 2 + 256);
  std::byte* acc = arena.allocate(payload);
  std::byte* rhs = arena.allocate(payload);
  std::mt19937 rng(1);
  fill_random(acc, payload, rng, spec.dtype);
  fill_random(rhs, payload, rng, spec.dtype);
  for (auto _ : state) {
    k(acc, rhs, payload);
    benchmark::DoNotOptimize(acc[0]);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload));
}
BENCHMARK(BM_KernelFold)->Arg(1024)->Arg(64 * 1024)->Arg(1 << 20);

void BM_GenericFold(benchmark::State& state) {
  const auto payload = static_cast<std::size_t>(state.range(0));
  const KernelSpec spec{Op::kSum, DType::kF32};
  const CombineFn g = generic_combine(spec);
  Bytes acc(payload);
  Bytes rhs(payload);
  std::mt19937 rng(1);
  fill_random(acc.data(), payload, rng, spec.dtype);
  fill_random(rhs.data(), payload, rng, spec.dtype);
  for (auto _ : state) {
    g(acc, std::span<const std::byte>(rhs.data(), rhs.size()));
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload));
}
BENCHMARK(BM_GenericFold)->Arg(1024)->Arg(64 * 1024)->Arg(1 << 20);

void BM_ArenaAllocate(benchmark::State& state) {
  for (auto _ : state) {
    BufferArena arena(1 << 16);
    for (int i = 0; i < 64; ++i) {
      benchmark::DoNotOptimize(arena.allocate(1000));
    }
  }
}
BENCHMARK(BM_ArenaAllocate);

}  // namespace

LOGPC_BENCH_MAIN(report)
