#include "sim/trace.hpp"

#include <algorithm>
#include <tuple>

namespace logpc::sim {

Trace Trace::from(const Schedule& s) {
  Trace trace;
  trace.per_proc.resize(static_cast<std::size_t>(s.params().P));
  const Time o = s.params().o;
  for (const auto& op : s.sends()) {
    trace.per_proc[static_cast<std::size_t>(op.from)].push_back(Activity{
        ActivityKind::kSendOverhead, op.start, op.start + o, op.item, op.to});
    const Time r = s.recv_start(op);
    trace.per_proc[static_cast<std::size_t>(op.to)].push_back(
        Activity{ActivityKind::kRecvOverhead, r, r + o, op.item, op.from});
  }
  for (auto& acts : trace.per_proc) {
    std::sort(acts.begin(), acts.end(),
              [](const Activity& a, const Activity& b) {
                return std::tie(a.begin, a.end) < std::tie(b.begin, b.end);
              });
  }
  return trace;
}

Time Trace::busy_cycles(ProcId p) const {
  Time total = 0;
  for (const auto& a : per_proc[static_cast<std::size_t>(p)]) {
    total += a.end - a.begin;
  }
  return total;
}

}  // namespace logpc::sim
