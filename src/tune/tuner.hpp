#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "exec/engine.hpp"
#include "logp/hier.hpp"
#include "runtime/planner.hpp"
#include "tune/decision_table.hpp"

/// \file tuner.hpp
/// The offline auto-tuner: benchmark every candidate broadcast schedule on
/// the *real* execution engine per (P, payload-size segment), record the
/// measured winner per segment in a DecisionTable, and let the planner's
/// tuned fast path serve it from then on.  This is the mpptest-style
/// methodology of Barchet-Estefanel & Mounié (arXiv:cs/0408034): model
/// parameters predict well inside one regime, but regime *boundaries*
/// (where the segmented pipeline overtakes the bulk tree, where tree
/// shape stops mattering) are cheaper to measure than to model.
///
/// Candidates per segment: the paper-optimal Theorem 2.1 tree, the
/// binomial / binary / chain baselines, the two-level hierarchical
/// schedule (when a topology is configured), and the Section 3 segmented
/// k-item pipeline (as a *fixed* policy: always split, so it prices its
/// per-segment overhead honestly at small payloads instead of silently
/// degenerating to the bulk tree).  Trials are interleaved across
/// candidates round-robin — the same de-drifting the telemetry-overhead
/// bench uses — and scored by median wall time.

namespace logpc::tune {

struct TunerOptions {
  /// Machine sizes to tune.  Every P must be >= 2.
  std::vector<int> Ps{4, 8};
  /// Representative payload bytes per size segment (each lands in its
  /// size_class_of bucket; one decision is recorded per distinct class).
  std::vector<std::size_t> sizes{256, 4096, 65536, 262144};
  /// Planning-machine shape (P overwritten per grid point).  Only the
  /// schedule *shape* depends on it; timings come from the engine.
  Params base{2, 4, 1, 2};
  bool include_trees = true;  ///< binomial, binary, chain candidates
  /// Segmented-pipeline candidate: always splits into
  /// clamp(ceil(bytes / segment_bytes), min_segments, max_segments)
  /// segments.
  bool include_segmented = true;
  std::size_t segment_bytes = 64 * 1024;
  std::int32_t min_segments = 2;
  std::int32_t max_segments = 16;
  /// > 1 adds the hierarchical candidate with this many uniform clusters
  /// (skipped at grid points where clusters >= P).
  std::int32_t clusters = 0;
  /// Cross-cluster link class of the hierarchical candidate (P ignored).
  Params cross{2, 16, 2, 8};
  int trials = 5;  ///< timed rounds per candidate (median scored)
  int warmup = 1;  ///< untimed rounds per candidate
  exec::Engine::Options engine;
  /// Planner to resolve candidate plans through (warms its cache as a side
  /// effect); nullptr uses runtime::Planner::shared_default().
  std::shared_ptr<runtime::Planner> planner;
};

/// One candidate's score at one grid point.
struct CandidateTiming {
  std::string name;  ///< "optimal", "binomial", ..., "segmented(k=4)"
  runtime::Problem problem = runtime::Problem::kBroadcast;
  std::int32_t segments = 1;
  std::int32_t clusters = 0;
  double median_ns = 0;
};

/// Everything measured at one (P, size) grid point, plus the decision the
/// table recorded for its size class.
struct SegmentResult {
  Collective collective = Collective::kBroadcast;
  int P = 0;
  std::size_t bytes = 0;
  int size_class = 0;
  std::vector<CandidateTiming> timings;  ///< sorted fastest first
  Decision winner;
};

struct TuneReport {
  std::vector<SegmentResult> segments;
  DecisionTable table;
};

/// Runs the tuning grid on the real engine.  Throws std::invalid_argument
/// for an empty or ill-formed grid.  The returned table is ready to
/// install via runtime::Planner::set_decision_table (and to persist via
/// DecisionTable::save).
[[nodiscard]] TuneReport auto_tune(const TunerOptions& opts);

}  // namespace logpc::tune
