#include "sum/summation_tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace logpc::sum {

Schedule SummationPlan::timing_view() const {
  Schedule s(params, 1);
  for (ProcId p = 0; p < params.P; ++p) s.add_initial(0, p, 0);
  for (const auto& pp : procs) {
    if (pp.send_to == kNoProc) continue;
    s.add_send(pp.send_time, pp.proc, pp.send_to, 0);
  }
  s.sort();
  return s;
}

Params reversal_params(const Params& params) {
  return Params{params.P, params.L + 1, params.o, params.g};
}

SummationPlan plan_from_tree(const Params& params, const BroadcastTree& tree,
                             Time t) {
  params.require_valid();
  if (t < 0) throw std::invalid_argument("plan_from_tree: t >= 0");
  if (params.g < params.o + 1) {
    throw std::invalid_argument(
        "summation: requires g >= o + 1 (a reception's o+1 cycles must fit "
        "inside one gap)");
  }
  if (tree.params() != reversal_params(params)) {
    throw std::invalid_argument(
        "plan_from_tree: tree must be built on reversal_params(params)");
  }
  if (tree.makespan() > t) {
    throw std::invalid_argument("plan_from_tree: tree makespan exceeds t");
  }
  if (tree.size() > params.P) {
    throw std::invalid_argument("plan_from_tree: tree larger than machine");
  }

  SummationPlan plan;
  plan.params = params;
  plan.t = t;
  plan.root = 0;
  plan.reversed_tree = tree;
  const int n_nodes = tree.size();
  plan.procs.resize(static_cast<std::size_t>(n_nodes));

  for (int i = 0; i < n_nodes; ++i) {
    auto& pp = plan.procs[static_cast<std::size_t>(i)];
    pp.proc = static_cast<ProcId>(i);
    const auto& node = tree.node(i);
    pp.send_time = t - node.label;
    pp.send_to =
        node.parent == -1 ? kNoProc : static_cast<ProcId>(node.parent);
    // Receptions: the broadcast send to child rank r at (label + r*g)
    // becomes, reversed, a reception whose o+1 cycles (overhead + one
    // addition) finish exactly at send_time - r*g.  Chronological order
    // puts the highest rank first.
    const auto k = static_cast<Time>(node.children.size());
    for (Time r = k - 1; r >= 0; --r) {
      pp.recv_times.push_back((t - node.label) - r * params.g -
                              (params.o + 1));
      pp.recv_from.push_back(
          static_cast<ProcId>(node.children[static_cast<std::size_t>(r)]));
    }
    plan.total_operands =
        sat_add(plan.total_operands, pp.local_operands(params.o));
  }
  return plan;
}

SummationPlan optimal_summation(const Params& params, Time t) {
  params.require_valid();
  if (t < 0) throw std::invalid_argument("optimal_summation: t >= 0");
  const Params rev = reversal_params(params);
  // A node at label d contributes S - (o+1)k... net S - o = t - d - o
  // operands beyond its reception cost, so nodes with d > t - o subtract
  // from the total: restrict to labels <= t - o (the root, label 0, always
  // participates - with t < o it still sums t + 1 operands alone).
  const Time horizon = std::max<Time>(0, t - params.o);
  const Count avail = bcast::reachable(rev, horizon);
  const int n_nodes =
      static_cast<int>(std::min<Count>(avail, static_cast<Count>(params.P)));
  return plan_from_tree(params, BroadcastTree::optimal(rev, n_nodes), t);
}

Count max_operands(const Params& params, Time t) {
  return optimal_summation(params, t).total_operands;
}

Time min_time_for_operands(const Params& params, Count n) {
  if (n < 1) throw std::invalid_argument("min_time_for_operands: n >= 1");
  Time lo = 0;
  Time hi = 1;
  while (max_operands(params, hi) < n) {
    lo = hi;
    hi *= 2;
  }
  while (lo < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (max_operands(params, mid) >= n) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace logpc::sum
