#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "bcast/tree.hpp"
#include "sched/metrics.hpp"
#include "validate/checker.hpp"

namespace logpc::sim {
namespace {

// Forwards every new item to a fixed list of targets.
class ForwardTo : public Program {
 public:
  explicit ForwardTo(std::vector<ProcId> targets)
      : targets_(std::move(targets)) {}
  void on_item(Context& ctx, ItemId item) override {
    for (const ProcId t : targets_) ctx.send(t, item);
  }

 private:
  std::vector<ProcId> targets_;
};

TEST(Engine, SingleSendTiming) {
  Engine e(Params{2, 6, 2, 4}, 1);
  e.set_program(0, std::make_unique<ForwardTo>(std::vector<ProcId>{1}));
  e.place(0, 0, 0);
  const auto r = e.run();
  EXPECT_EQ(r.messages, 1u);
  EXPECT_EQ(r.makespan, 10);  // L + 2o
  EXPECT_TRUE(validate::is_valid(r.schedule));
}

TEST(Engine, GapSpacesSuccessiveSends) {
  Engine e(Params{4, 6, 2, 4}, 1);
  e.set_program(0, std::make_unique<ForwardTo>(std::vector<ProcId>{1, 2, 3}));
  e.place(0, 0, 0);
  const auto r = e.run();
  ASSERT_EQ(r.messages, 3u);
  EXPECT_EQ(r.schedule.sends()[0].start, 0);
  EXPECT_EQ(r.schedule.sends()[1].start, 4);
  EXPECT_EQ(r.schedule.sends()[2].start, 8);
  EXPECT_TRUE(validate::is_valid(r.schedule));
}

TEST(Engine, RelayChainAccumulatesLatency) {
  Engine e(Params::postal(4, 3), 1);
  for (ProcId p = 0; p < 3; ++p) {
    e.set_program(p, std::make_unique<ForwardTo>(
                         std::vector<ProcId>{static_cast<ProcId>(p + 1)}));
  }
  e.place(0, 0, 0);
  const auto r = e.run();
  EXPECT_EQ(r.makespan, 9);  // three hops of L = 3
  EXPECT_TRUE(validate::is_valid(r.schedule));
}

TEST(Engine, OptimalTreeProgramReproducesFigure1Time) {
  // Drive each processor with its children list from the optimal broadcast
  // tree B(8); the reactive machine must realize exactly B(8) = 24 cycles
  // (Figure 1), closing the loop tree -> engine -> checker.
  const Params params{8, 6, 2, 4};
  const auto tree = bcast::BroadcastTree::optimal(params, 8);
  ASSERT_EQ(tree.makespan(), 24);
  Engine e(params, 1);
  // Node i of the tree is processor i (node order = label order).
  e.set_programs([&](ProcId p) -> std::unique_ptr<Program> {
    std::vector<ProcId> targets;
    for (const int child : tree.node(p).children) {
      targets.push_back(static_cast<ProcId>(child));
    }
    return std::make_unique<ForwardTo>(std::move(targets));
  });
  e.place(0, 0, 0);
  const auto r = e.run();
  EXPECT_EQ(r.makespan, 24);
  EXPECT_EQ(completion_time(r.schedule), 24);
  EXPECT_EQ(r.messages, 7u);
  EXPECT_TRUE(validate::is_valid(r.schedule));
}

TEST(Engine, SendOverheadBlocksDuringReceive) {
  // P1 receives at [8, 10) (o = 2) and has a queued send from t = 8 - it
  // must wait until 10.
  Engine e(Params{3, 6, 2, 4}, 2);
  class SendSecondItemAtStart : public Program {
   public:
    void on_item(Context& ctx, ItemId item) override {
      if (item == 1) ctx.send(2, 1);
    }
  };
  e.set_program(0, std::make_unique<ForwardTo>(std::vector<ProcId>{1}));
  e.set_program(1, std::make_unique<SendSecondItemAtStart>());
  e.place(0, 0, 0);   // item 0 travels 0 -> 1, occupying P1 at [8, 10)
  e.place(1, 1, 9);   // item 1 appears at P1 mid-receive... at t=9
  const auto r = e.run();
  ASSERT_EQ(r.messages, 2u);
  // P1's send of item 1 starts at 10, not 9.
  const auto& sends = r.schedule.sends();
  const auto it = std::find_if(sends.begin(), sends.end(),
                               [](const SendOp& op) { return op.item == 1; });
  ASSERT_NE(it, sends.end());
  EXPECT_EQ(it->start, 10);
  EXPECT_TRUE(validate::is_valid(r.schedule, {.require_complete = false}));
}

TEST(Engine, DuplicateDeliveryDoesNotRetriggerProgram) {
  // P2 receives the item twice; its program must fire on_item once (the
  // second arrival is not an availability improvement).
  Engine e(Params::postal(4, 3), 1);
  class CountItems : public Program {
   public:
    explicit CountItems(int& n) : n_(n) {}
    void on_item(Context&, ItemId) override { ++n_; }

   private:
    int& n_;
  };
  int count = 0;
  e.set_program(0, std::make_unique<ForwardTo>(std::vector<ProcId>{2}));
  e.set_program(1, std::make_unique<ForwardTo>(std::vector<ProcId>{2}));
  e.set_program(2, std::make_unique<CountItems>(count));
  e.place(0, 0, 0);
  e.place(0, 1, 1);  // P1 also holds it; forwards at 1, arriving later
  e.run();
  EXPECT_EQ(count, 1);
}

TEST(Engine, HorizonStopsSimulation) {
  Engine e(Params::postal(8, 3), 1);
  // A flood to 7 targets takes 7 cycles of sends; a horizon of 4 cuts it
  // short after the sends that start by t = 4.
  e.set_program(0, std::make_unique<ForwardTo>(
                       std::vector<ProcId>{1, 2, 3, 4, 5, 6, 7}));
  e.place(0, 0, 0);
  const auto r = e.run(4);
  EXPECT_TRUE(r.horizon_reached);
  EXPECT_LT(r.messages, 7u);
}

TEST(Engine, ThrowsOnSendingUnheldItem) {
  Engine e(Params::postal(3, 2), 2);
  class SendOther : public Program {
   public:
    void on_item(Context& ctx, ItemId) override { ctx.send(1, 1); }
  };
  e.set_program(0, std::make_unique<SendOther>());
  e.place(0, 0, 0);
  EXPECT_THROW(e.run(), std::logic_error);
}

TEST(Engine, RejectsBadPlacementAndPrograms) {
  Engine e(Params::postal(3, 2), 1);
  EXPECT_THROW(e.place(0, 7, 0), std::invalid_argument);
  EXPECT_THROW(e.place(3, 0, 0), std::invalid_argument);
  EXPECT_THROW(e.set_program(9, nullptr), std::invalid_argument);
}

TEST(Engine, RunTwiceThrows) {
  Engine e(Params::postal(2, 1), 1);
  e.place(0, 0, 0);
  e.run();
  EXPECT_THROW(e.run(), std::logic_error);
}

}  // namespace
}  // namespace logpc::sim
