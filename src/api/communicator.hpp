#pragma once

#include <memory>
#include <optional>
#include <span>

#include "bcast/all_to_all.hpp"
#include "bcast/combining.hpp"
#include "bcast/kitem.hpp"
#include "bcast/kitem_buffered.hpp"
#include "bcast/reduction.hpp"
#include "bcast/single_item.hpp"
#include "exec/engine.hpp"
#include "runtime/planner.hpp"
#include "sum/summation_tree.hpp"

/// \file communicator.hpp
/// The high-level entry point: an MPI-communicator-style facade that turns
/// measured machine parameters into optimal collective schedules and exact
/// cycle predictions.  This is what a runtime tuning layer would link
/// against; everything it returns is constructed by the paper's algorithms
/// and audited by validate::check in this library's tests.
///
/// Every schedule-producing method resolves through the planning runtime
/// (src/runtime): requests hit a shared, thread-safe plan cache keyed on
/// the canonical (problem, P, L, o, g, k, root) signature, so repeated and
/// concurrent requests for the same collective reuse one construction.
/// By default all Communicator instances share one process-wide Planner;
/// pass your own to isolate or size its cache.

namespace logpc::api {

/// Scatter/gather cost: the source must emit (receive) P-1 distinct
/// messages serialized by g, the last landing after a full transfer.
[[nodiscard]] Time scatter_time(const Params& params);

/// What to do when the engine's failure detector declares a rank dead
/// mid-collective.
enum class FailurePolicy : std::uint8_t {
  kAbort,   ///< rethrow exec::RankFailure to the caller
  kReplan,  ///< exclude the rank, re-plan on the survivors, run again
};

/// How a fault-tolerant run ended.
enum class RunStatus : std::uint8_t {
  kOk,         ///< completed on the full machine, no rank lost
  kRecovered,  ///< one or more ranks died; completed on the survivors
  kFailed,     ///< unrecoverable (root died, budget exhausted, P > 64)
};

/// Options for run_broadcast_ft.
struct FtRunOptions {
  FailurePolicy policy = FailurePolicy::kReplan;
  /// Faults to inject (deterministic in FaultSpec::seed); nullopt runs
  /// fault-free but still under acked delivery + failure detection.
  std::optional<fault::FaultSpec> faults;
  /// Rank deaths to survive before giving up (kFailed past this).
  int max_recoveries = 2;
  /// Engine knobs for the run; `engine.recovery.enabled` is forced on.
  exec::Engine::Options engine;
};

/// Outcome of a fault-tolerant run.  `report` processor i is physical rank
/// survivors[i] — on the fault-free path survivors is just 0..P-1.
struct FtRunResult {
  RunStatus status = RunStatus::kOk;
  exec::ExecReport report;          ///< the completed (possibly degraded) run
  std::vector<ProcId> survivors;    ///< physical rank of each report proc
  std::vector<ProcId> failed_ranks; ///< physical ranks excluded, in order
  int attempts = 0;                 ///< engine runs performed (1 = no failure)
  std::uint64_t recovery_ns = 0;    ///< first failure -> degraded completion
  std::string error;                ///< set when status == kFailed
  runtime::PlanPtr plan;            ///< the plan the final run executed
};

/// A machine-bound planner for the paper's collectives.
///
/// All methods are const, deterministic and thread-safe; schedules use
/// processor ids 0..P-1 with the root/source as stated.  Methods returning
/// Time only are exact cycle counts of the corresponding schedule.
class Communicator {
 public:
  /// \param planner the planning service to resolve through; nullptr means
  ///        the process-wide runtime::Planner::shared_default().
  explicit Communicator(Params params,
                        std::shared_ptr<runtime::Planner> planner = nullptr);

  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] int size() const { return params_.P; }

  /// The planning service this communicator resolves collectives through.
  [[nodiscard]] const std::shared_ptr<runtime::Planner>& planner() const {
    return planner_;
  }

  /// Cached plan for any problem on this machine (zero-copy: the returned
  /// plan is the immutable cache entry itself).  Arguments as
  /// runtime::PlanKey::make, i.e. stated on this physical machine.
  [[nodiscard]] runtime::PlanPtr plan(runtime::Problem problem,
                                      std::int64_t k = 1,
                                      ProcId root = 0) const;

  /// The executable lowering of the cached plan for an *executable*
  /// problem — kBroadcast, kKItemBroadcast (k = segment count; the root-0
  /// plan is relabeled for other roots, so all roots share one cache
  /// entry), kReduce, kAllToAll (k = 1 is the allgather the run path uses)
  /// or kSummation (k = operand count n).  This is the
  /// exact program the corresponding run_* method would execute; a serving
  /// layer (svc::CollectiveService) caches the returned Program per
  /// (problem, k, root) and hands it straight to its pool engines, paying
  /// plan lookup + compilation once instead of per request.  Throws
  /// std::invalid_argument for problems with no execution semantics.
  [[nodiscard]] exec::Program compile(runtime::Problem problem,
                                      std::int64_t k = 1,
                                      ProcId root = 0) const;

  // --- one-to-all -------------------------------------------------------
  /// Optimal single-item broadcast (Theorem 2.1).
  [[nodiscard]] Schedule bcast(ProcId root = 0) const;
  [[nodiscard]] Time bcast_time() const;

  /// Single-sending k-item broadcast in the postal projection of this
  /// machine (effective hop latency L + 2o; Section 3).  Returns the
  /// block-cyclic construction with its exact completion.
  [[nodiscard]] bcast::KItemResult bcast_k(int k) const;

  /// The modified-model (buffered) k-item broadcast (Theorem 3.8).
  [[nodiscard]] bcast::BufferedKItemResult bcast_k_buffered(int k) const;

  /// One distinct message from the root to every processor.
  [[nodiscard]] Schedule scatter(ProcId root = 0) const;
  [[nodiscard]] Time scatter_time() const { return api::scatter_time(params_); }

  // --- all-to-one -------------------------------------------------------
  /// Optimal message reduction (reversed broadcast, Section 4.2).
  [[nodiscard]] bcast::ReductionPlan reduce(ProcId root = 0) const;
  [[nodiscard]] Time reduce_time() const { return bcast_time(); }

  /// One distinct message from every processor to the root.
  [[nodiscard]] Schedule gather(ProcId root = 0) const;
  [[nodiscard]] Time gather_time() const { return api::scatter_time(params_); }

  /// Summation of n input operands with unit-cost additions (Section 5);
  /// requires g >= o + 1.
  [[nodiscard]] sum::SummationPlan reduce_operands(Count n) const;
  [[nodiscard]] Time reduce_operands_time(Count n) const;

  // --- all-to-all -------------------------------------------------------
  /// Optimal all-to-all broadcast, k items per processor (Section 4.1).
  [[nodiscard]] Schedule alltoall(int k = 1) const;
  [[nodiscard]] Time alltoall_time(int k = 1) const;

  /// Optimal all-to-all personalized communication (same rotation).
  [[nodiscard]] Schedule alltoall_personalized() const;

  /// All-reduce via combining broadcast (Theorem 4.1), postal projection.
  /// Completion equals reduce_time in the postal metric - half of
  /// reduce-then-broadcast.  The returned schedule runs on P' = f_T >= P
  /// ring slots; when P is not a Fibonacci size, map the first P slots to
  /// real processors and pad the rest with the operator identity.
  [[nodiscard]] bcast::CombiningSchedule allreduce() const;
  [[nodiscard]] Time allreduce_time() const;

  // --- execution (plan, then run on real threads) -----------------------
  // Each run_* method resolves its plan through the planner, compiles it
  // to per-processor instruction streams and executes it on the exec
  // engine — P OS threads exchanging payload bytes through bounded
  // lock-free mailboxes.  Pass `engine` to control pooling/timeouts;
  // nullptr uses the process-wide exec::Engine::shared().

  /// Broadcasts `payload` (one item) from `root` to all P processors;
  /// report.item_at(p, 0) holds every copy.
  [[nodiscard]] exec::ExecReport run_broadcast(
      std::span<const std::byte> payload, ProcId root = 0,
      exec::Engine* engine = nullptr) const;

  /// Broadcast through the planner's tuned fast path: the measured winner
  /// for this (P, payload size) — bulk optimal/baseline tree, two-level
  /// hierarchical schedule, or the segmented k-item pipeline — resolved
  /// via Planner::tuned_key and dispatched to the matching execution
  /// path.  Byte-identical results to run_broadcast, schedule aside; with
  /// no decision table installed it *is* run_broadcast.
  [[nodiscard]] exec::ExecReport run_broadcast_tuned(
      std::span<const std::byte> payload, ProcId root = 0,
      exec::Engine* engine = nullptr) const;

  /// Message reduction of one value per processor (values[p] is p's
  /// contribution), folded with `op` in the plan's arrival order;
  /// report.folded_at(root) is the result.  `op` must be associative.
  [[nodiscard]] exec::ExecReport run_reduce(
      const std::vector<exec::Bytes>& values, const exec::CombineFn& op,
      ProcId root = 0, exec::Engine* engine = nullptr) const;
  /// As above with a typed combiner: folds whose operand sizes match take
  /// the fused SIMD kernel for op.spec() (exec::ExecReport::kernel_folds
  /// counts them); mismatched sizes fall back to the scalar lane.
  [[nodiscard]] exec::ExecReport run_reduce(
      const std::vector<exec::Bytes>& values, const exec::Combiner& op,
      ProcId root = 0, exec::Engine* engine = nullptr) const;

  /// All-gather via the Section 4.1 all-to-all broadcast: every processor
  /// contributes contributions[p] and ends holding all P payloads
  /// (report.item_at(p, q) == contributions[q] for all p, q).
  [[nodiscard]] exec::ExecReport run_allgather(
      const std::vector<exec::Bytes>& contributions,
      exec::Engine* engine = nullptr) const;

  /// Fault-tolerant broadcast: runs under the engine's acked-delivery
  /// protocol (with `options.faults` injected when set) and, under
  /// FailurePolicy::kReplan, survives rank deaths by asking the planner
  /// for a fresh optimal schedule over the survivors — the key gains a
  /// membership mask, the 𝔅 tree is universal so the degraded plan is
  /// itself optimal — and re-running until the collective completes or the
  /// recovery budget is spent.  Requires P <= 64 to recover (the mask is
  /// one machine word); a dead root is unrecoverable by construction.
  /// Builds a private engine from `options.engine`, so a deliberately
  /// killed rank never poisons the shared pool.
  [[nodiscard]] FtRunResult run_broadcast_ft(
      std::span<const std::byte> payload, ProcId root = 0,
      const FtRunOptions& options = {}) const;

  /// Section 5 summation executed on real threads: plans reduce_operands(n)
  /// and folds `operands` — laid out per sum::operand_layout of that plan
  /// (operands[i] belongs to plan.procs[i]; counts must match or the engine
  /// throws).  report.folded_at(plan root) equals the sequential left-fold
  /// of the operands in sum::combination_order.
  [[nodiscard]] exec::ExecReport run_reduce_operands(
      Count n, const std::vector<std::vector<exec::Bytes>>& operands,
      const exec::CombineFn& op, exec::Engine* engine = nullptr) const;
  /// Typed-combiner variant: size-matched folds run on the SIMD kernel,
  /// still in the plan's (possibly non-commutative) combination order.
  [[nodiscard]] exec::ExecReport run_reduce_operands(
      Count n, const std::vector<std::vector<exec::Bytes>>& operands,
      const exec::Combiner& op, exec::Engine* engine = nullptr) const;

 private:
  Params params_;
  std::shared_ptr<runtime::Planner> planner_;
  /// Postal projection for the Section 3/4.2 algorithms: g normalized to 1
  /// cycle-groups, overheads folded into the latency (L' = L + 2o).
  [[nodiscard]] Params postal_projection() const;
};

}  // namespace logpc::api
