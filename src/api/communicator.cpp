#include "api/communicator.hpp"

#include <stdexcept>
#include <utility>

#include "bcast/kitem_bounds.hpp"
#include "obs/trace_recorder.hpp"

namespace logpc::api {

using runtime::PlanKey;
using runtime::PlanPtr;

Time scatter_time(const Params& params) {
  params.require_valid();
  if (params.P == 1) return 0;
  return (params.P - 2) * params.g + params.transfer_time();
}

Communicator::Communicator(Params params,
                           std::shared_ptr<runtime::Planner> planner)
    : params_(params),
      planner_(planner ? std::move(planner)
                       : runtime::Planner::shared_default()) {
  params.require_valid();
}

Params Communicator::postal_projection() const {
  return Params::postal(params_.P, params_.transfer_time());
}

runtime::PlanPtr Communicator::plan(runtime::Problem problem, std::int64_t k,
                                    ProcId root) const {
  const obs::Span span("comm.plan", "comm");
  return planner_->plan(problem, params_, k, root);
}

Schedule Communicator::bcast(ProcId root) const {
  const obs::Span span("comm.bcast", "comm");
  return planner_->plan(PlanKey::broadcast(params_, root))->schedule;
}

Time Communicator::bcast_time() const {
  return bcast::B_of_P(params_, params_.P);
}

bcast::KItemResult Communicator::bcast_k(int k) const {
  const obs::Span span("comm.bcast_k", "comm");
  const PlanPtr plan = planner_->plan(PlanKey::kitem(params_, k));
  bcast::KItemResult r;
  r.schedule = plan->schedule;
  r.method = plan->method == "greedy"
                 ? bcast::KItemMethod::kGreedy
                 : bcast::KItemMethod::kContinuousBlockCyclic;
  r.bounds = bcast::kitem_bounds(plan->key.params.P, plan->key.params.L, k);
  r.completion = plan->completion;
  r.slack = plan->slack;
  return r;
}

bcast::BufferedKItemResult Communicator::bcast_k_buffered(int k) const {
  const obs::Span span("comm.bcast_k_buffered", "comm");
  const PlanPtr plan = planner_->plan(PlanKey::kitem_buffered(params_, k));
  bcast::BufferedKItemResult r;
  r.schedule = plan->schedule;
  r.bounds = bcast::kitem_bounds(plan->key.params.P, plan->key.params.L, k);
  r.completion = plan->completion;
  r.max_buffer_depth = plan->max_buffer_depth;
  return r;
}

Schedule Communicator::scatter(ProcId root) const {
  const obs::Span span("comm.scatter", "comm");
  if (root < 0 || root >= params_.P) {
    throw std::invalid_argument("Communicator::scatter: bad root");
  }
  return planner_->plan(PlanKey::scatter(params_, root))->schedule;
}

bcast::ReductionPlan Communicator::reduce(ProcId root) const {
  const obs::Span span("comm.reduce", "comm");
  const PlanPtr plan = planner_->plan(PlanKey::reduce(params_, root));
  bcast::ReductionPlan r;
  r.params = params_;
  r.root = root;
  r.schedule = plan->schedule;
  r.completion = plan->completion;
  return r;
}

Schedule Communicator::gather(ProcId root) const {
  const obs::Span span("comm.gather", "comm");
  if (root < 0 || root >= params_.P) {
    throw std::invalid_argument("Communicator::gather: bad root");
  }
  return planner_->plan(PlanKey::gather(params_, root))->schedule;
}

sum::SummationPlan Communicator::reduce_operands(Count n) const {
  const obs::Span span("comm.reduce_operands", "comm");
  return sum::optimal_summation(params_,
                                sum::min_time_for_operands(params_, n));
}

Time Communicator::reduce_operands_time(Count n) const {
  return sum::min_time_for_operands(params_, n);
}

Schedule Communicator::alltoall(int k) const {
  const obs::Span span("comm.alltoall", "comm");
  return planner_->plan(PlanKey::alltoall(params_, k))->schedule;
}

Time Communicator::alltoall_time(int k) const {
  return bcast::all_to_all_lower_bound(params_, k);
}

Schedule Communicator::alltoall_personalized() const {
  const obs::Span span("comm.alltoall_personalized", "comm");
  return planner_->plan(PlanKey::alltoall_personalized(params_))->schedule;
}

bcast::CombiningSchedule Communicator::allreduce() const {
  const obs::Span span("comm.allreduce", "comm");
  const PlanPtr plan = planner_->plan(PlanKey::allreduce(params_));
  bcast::CombiningSchedule cs;
  cs.params = plan->schedule.params();
  cs.T = plan->completion;
  cs.sends = plan->schedule.sends();
  return cs;
}

Time Communicator::allreduce_time() const {
  const Params postal = postal_projection();
  return bcast::combining_time_for(postal.P, postal.L);
}

namespace {
exec::Engine& engine_or_shared(exec::Engine* engine) {
  return engine != nullptr ? *engine : exec::Engine::shared();
}
}  // namespace

exec::ExecReport Communicator::run_broadcast(std::span<const std::byte> payload,
                                             ProcId root,
                                             exec::Engine* engine) const {
  const obs::Span span("comm.run_broadcast", "comm");
  const PlanPtr plan = planner_->plan(PlanKey::broadcast(params_, root));
  const exec::Program program =
      exec::compile_broadcast(plan->schedule, "bcast");
  const std::vector<exec::Bytes> items{
      exec::Bytes(payload.begin(), payload.end())};
  return engine_or_shared(engine).run(program, items);
}

exec::ExecReport Communicator::run_reduce(const std::vector<exec::Bytes>& values,
                                          const exec::CombineFn& op,
                                          ProcId root,
                                          exec::Engine* engine) const {
  const obs::Span span("comm.run_reduce", "comm");
  const exec::Program program = exec::compile_reduction(reduce(root));
  return engine_or_shared(engine).run(program, values, op);
}

exec::ExecReport Communicator::run_allgather(
    const std::vector<exec::Bytes>& contributions, exec::Engine* engine) const {
  const obs::Span span("comm.run_allgather", "comm");
  const PlanPtr plan = planner_->plan(PlanKey::alltoall(params_, 1));
  const exec::Program program =
      exec::compile_broadcast(plan->schedule, "allgather");
  return engine_or_shared(engine).run(program, contributions);
}

exec::ExecReport Communicator::run_reduce_operands(
    Count n, const std::vector<std::vector<exec::Bytes>>& operands,
    const exec::CombineFn& op, exec::Engine* engine) const {
  const obs::Span span("comm.run_reduce_operands", "comm");
  const exec::Program program = exec::compile_summation(reduce_operands(n));
  return engine_or_shared(engine).run(program, operands, op);
}

}  // namespace logpc::api
