#include "sim/calibrate.hpp"

#include <memory>
#include <stdexcept>

#include "sched/metrics.hpp"
#include "sim/engine.hpp"

namespace logpc::sim {

namespace {

// Sends every target the probe item as soon as it is held.
class Burst : public Program {
 public:
  explicit Burst(std::vector<ProcId> targets) : targets_(std::move(targets)) {}
  void on_item(Context& ctx, ItemId item) override {
    for (const ProcId t : targets_) ctx.send(t, item);
  }

 private:
  std::vector<ProcId> targets_;
};

// Forwards a specific item to a fixed target.
class ForwardOne : public Program {
 public:
  ForwardOne(ItemId item, ProcId to) : item_(item), to_(to) {}
  void on_item(Context& ctx, ItemId item) override {
    if (item == item_) ctx.send(to_, item);
  }

 private:
  ItemId item_;
  ProcId to_;
};

// Measures the gap: one processor bursts two messages; their send starts
// differ by exactly g.
Time probe_gap(const Params& actual) {
  Engine e(Params{3, actual.L, actual.o, actual.g}, 1);
  e.set_program(0, std::make_unique<Burst>(std::vector<ProcId>{1, 2}));
  e.place(0, 0, 0);
  const auto run = e.run();
  if (run.schedule.sends().size() != 2) {
    throw std::logic_error("calibrate: gap probe lost a message");
  }
  return run.schedule.sends()[1].start - run.schedule.sends()[0].start;
}

// Measures the overhead: P1 is hit by an arrival whose receive overhead
// occupies [r, r+o); an independent send request issued at exactly r can
// only start at r+o.
Time probe_overhead(const Params& actual) {
  const Params params{3, actual.L, actual.o, actual.g};
  Engine e(params, 2);
  e.set_program(0, std::make_unique<Burst>(std::vector<ProcId>{1}));
  e.set_program(1, std::make_unique<ForwardOne>(1, 2));
  e.place(0, 0, 0);                               // arrival busies P1
  const Time r = actual.o + actual.L;             // receive-overhead start
  e.place(1, 1, r);                               // P1 wants to send now
  const auto run = e.run();
  for (const auto& op : run.schedule.sends()) {
    if (op.from == 1) return op.start - r;
  }
  throw std::logic_error("calibrate: overhead probe lost the send");
}

// Measures o + L + o: a single ping's availability time.
Time probe_transfer(const Params& actual) {
  Engine e(Params{2, actual.L, actual.o, actual.g}, 1);
  e.set_program(0, std::make_unique<Burst>(std::vector<ProcId>{1}));
  e.place(0, 0, 0);
  const auto run = e.run();
  return completion_time(run.schedule);
}

}  // namespace

MeasuredParams calibrate(const Params& actual) {
  actual.require_valid();
  MeasuredParams m;
  m.P = actual.P;
  m.g = probe_gap(actual);
  m.o = probe_overhead(actual);
  m.L = probe_transfer(actual) - 2 * m.o;
  return m;
}

}  // namespace logpc::sim
