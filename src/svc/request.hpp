#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "exec/engine.hpp"
#include "obs/critical_path.hpp"
#include "svc/scheduler.hpp"

/// \file request.hpp
/// The request/response vocabulary of the collective service, separated
/// from the daemon itself so the admission-side helpers (svc/fusion.hpp)
/// can reason about requests without pulling in the service's engine
/// pools, introspection server and scheduler internals.

namespace logpc::svc {

/// Collectives the service serves.  Each maps to an executable problem of
/// the planning runtime and to the matching Engine::run form.
enum class OpKind : std::uint8_t {
  kBroadcast,  ///< payload from root to all (one item)
  kReduce,     ///< one value per proc folded to root with `combine`
  kAllgather,  ///< every proc contributes values[p], all end with all P
};

[[nodiscard]] const char* op_kind_name(OpKind op) noexcept;

/// Terminal status of a request (SubmitResult::status uses the same enum:
/// a rejected submit never gets a future).
enum class Status : std::uint8_t {
  kOk,           ///< executed; Response::report holds the run
  kQueueFull,    ///< rejected at admission: tenant queue at capacity
  kRateLimited,  ///< rejected at admission: tenant over its rate limit
  kShutdown,     ///< rejected or cancelled by service shutdown
  kError,        ///< dispatched but the run threw; Response::error says why
};

[[nodiscard]] const char* status_name(Status s) noexcept;

/// One collective to execute.  Inputs are owned by the request (the
/// service executes asynchronously; views would dangle).
struct Request {
  OpKind op = OpKind::kBroadcast;
  QoS qos = QoS::kBatch;
  ProcId root = 0;
  exec::Bytes payload;               ///< kBroadcast: the item
  std::vector<exec::Bytes> values;   ///< kReduce/kAllgather: one per proc
  exec::Combiner combine;            ///< kReduce: fold operator
  /// Fusion identity for *generic* (type-erased) combiners.  A typed
  /// Combiner carries its own identity (the KernelSpec), but two
  /// std::function combiners cannot be compared, so generic reduces fuse
  /// only when both requests declare the same non-empty tag.  The tag is a
  /// promise: equal tags mean the same size-preserving elementwise
  /// operator, applicable independently per request-sized chunk.  Leave
  /// empty (the default) and a generic reduce never fuses.
  std::string combine_tag;
};

/// What the future resolves to.
struct Response {
  Status status = Status::kOk;
  std::string error;             ///< set when status == kError/kShutdown
  exec::ExecReport report;       ///< the completed run (status == kOk)
  std::uint64_t queue_wait_ns = 0;  ///< admission to dispatch
  std::uint64_t total_ns = 0;       ///< submission to completion
  int pool = -1;                    ///< engine pool that ran it
  /// Global dispatch order (0-based): the k-th request any pool picked.
  /// The QoS and fairness tests assert on it.
  std::uint64_t dispatch_seq = 0;
  /// Requests coalesced into the engine run that produced this response
  /// (1 = ran alone) and this request's slot in the fused payload.
  std::uint32_t fused = 1;
  std::uint32_t fused_index = 0;
  /// Segments the payload was split into for the Section 3 k-item
  /// pipeline (1 = bulk single-send).
  std::uint32_t segments = 1;
  /// The run's analyzed profile (critical path, per-rank decomposition,
  /// model residual), shared with the service's flight recorder.  Null
  /// when Options::profile is off or the run failed.  Every member of a
  /// fused batch shares the batch's one profile.
  std::shared_ptr<const obs::RunProfile> profile;
};

/// Synchronous half of submit().  `response` is valid iff accepted().
struct SubmitResult {
  Status status = Status::kOk;
  std::future<Response> response;
  [[nodiscard]] bool accepted() const { return status == Status::kOk; }
};

}  // namespace logpc::svc
