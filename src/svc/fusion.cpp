#include "svc/fusion.hpp"

#include <algorithm>
#include <span>
#include <utility>

namespace logpc::svc {

namespace {

/// Member `index`'s chunk of a fused buffer; the whole buffer when the run
/// was not fused.  Bounds-clamped so a combiner that (against the
/// combine_tag contract) resized the accumulator degrades to short output
/// instead of undefined behavior.
exec::Bytes slice_chunk(const exec::Bytes& whole, std::size_t index,
                        std::size_t chunk, std::size_t count) {
  if (count <= 1) return whole;
  const std::size_t begin = std::min(index * chunk, whole.size());
  const std::size_t end = std::min(begin + chunk, whole.size());
  return exec::Bytes(whole.begin() + static_cast<std::ptrdiff_t>(begin),
                     whole.begin() + static_cast<std::ptrdiff_t>(end));
}

/// Applies `inner` independently per chunk: the fused accumulator is N
/// members' accumulators side by side, and each member's fold must see
/// exactly the bytes its unfused run would have seen.
exec::CombineFn chunked_combine(exec::CombineFn inner, std::size_t chunk) {
  return [inner = std::move(inner), chunk](exec::Bytes& acc,
                                           std::span<const std::byte> rhs) {
    exec::Bytes tmp;
    for (std::size_t off = 0;
         off + chunk <= acc.size() && off + chunk <= rhs.size();
         off += chunk) {
      const auto at = static_cast<std::ptrdiff_t>(off);
      tmp.assign(acc.begin() + at,
                 acc.begin() + at + static_cast<std::ptrdiff_t>(chunk));
      inner(tmp, rhs.subspan(off, chunk));
      std::copy_n(tmp.begin(),
                  static_cast<std::ptrdiff_t>(std::min(chunk, tmp.size())),
                  acc.begin() + at);
    }
  };
}

}  // namespace

std::optional<FusionKey> fusion_key(const Request& request) {
  FusionKey key;
  key.op = request.op;
  key.qos = request.qos;
  switch (request.op) {
    case OpKind::kBroadcast:
      if (request.payload.empty()) return std::nullopt;
      key.root = request.root;
      key.bytes = request.payload.size();
      return key;
    case OpKind::kReduce: {
      if (request.values.empty() || !request.combine.valid()) {
        return std::nullopt;
      }
      const std::size_t bytes = request.values.front().size();
      if (bytes == 0) return std::nullopt;
      for (const exec::Bytes& v : request.values) {
        if (v.size() != bytes) return std::nullopt;
      }
      key.root = request.root;
      key.bytes = bytes;
      key.procs = request.values.size();
      if (request.combine.typed()) {
        // Concatenation must not move an element boundary across a request
        // seam: a ragged tail folded standalone stays untouched (the
        // kernel folds floor(bytes/elem) elements), but fused it would
        // complete a spanning element and diverge bitwise.
        if (bytes % exec::elem_size(request.combine.spec().dtype) != 0) {
          return std::nullopt;
        }
        key.typed = true;
        key.spec = request.combine.spec();
      } else {
        if (request.combine_tag.empty()) return std::nullopt;
        key.tag = request.combine_tag;
      }
      return key;
    }
    case OpKind::kAllgather: {
      if (request.values.empty()) return std::nullopt;
      const std::size_t bytes = request.values.front().size();
      if (bytes == 0) return std::nullopt;
      for (const exec::Bytes& v : request.values) {
        if (v.size() != bytes) return std::nullopt;
      }
      key.bytes = bytes;
      key.procs = request.values.size();
      return key;
    }
  }
  return std::nullopt;
}

int choose_segments(std::size_t total_bytes, const SegmentPolicy& policy) {
  if (policy.threshold == 0 || total_bytes < policy.threshold ||
      policy.max_segments < 2) {
    return 1;
  }
  const std::size_t target = std::max<std::size_t>(policy.segment_bytes, 1);
  const std::size_t want = (total_bytes + target - 1) / target;
  return static_cast<int>(std::clamp<std::size_t>(
      want, 2, static_cast<std::size_t>(policy.max_segments)));
}

std::vector<exec::Bytes> split_segments(const exec::Bytes& payload,
                                        int segments) {
  const auto k = static_cast<std::size_t>(std::max(segments, 1));
  std::vector<exec::Bytes> out;
  out.reserve(k);
  const std::size_t base = payload.size() / k;
  const std::size_t rem = payload.size() % k;
  std::size_t off = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t len = base + (i < rem ? 1 : 0);
    const auto at = static_cast<std::ptrdiff_t>(off);
    out.emplace_back(payload.begin() + at,
                     payload.begin() + at + static_cast<std::ptrdiff_t>(len));
    off += len;
  }
  return out;
}

exec::Bytes concat_payloads(const std::vector<const Request*>& members) {
  std::size_t total = 0;
  for (const Request* r : members) total += r->payload.size();
  exec::Bytes out;
  out.reserve(total);
  for (const Request* r : members) {
    out.insert(out.end(), r->payload.begin(), r->payload.end());
  }
  return out;
}

std::vector<exec::Bytes> concat_values(
    const std::vector<const Request*>& members) {
  std::vector<exec::Bytes> out;
  if (members.empty()) return out;
  const std::size_t P = members.front()->values.size();
  out.resize(P);
  for (std::size_t p = 0; p < P; ++p) {
    const std::size_t chunk = members.front()->values[p].size();
    out[p].reserve(members.size() * chunk);
    for (const Request* r : members) {
      out[p].insert(out[p].end(), r->values[p].begin(), r->values[p].end());
    }
  }
  return out;
}

exec::Combiner fused_combiner(const Request& exemplar, std::size_t chunk,
                              std::size_t count) {
  if (count <= 1 || exemplar.combine.typed()) return exemplar.combine;
  return exec::Combiner(chunked_combine(exemplar.combine.generic(), chunk));
}

exec::ExecReport member_report(const exec::ExecReport& run, OpKind op,
                               std::size_t chunk, std::size_t index,
                               std::size_t count) {
  exec::ExecReport r;
  r.params = run.params;
  r.mode = run.mode;
  r.label = run.label;
  r.predicted_makespan = run.predicted_makespan;
  r.wall_ns = run.wall_ns;
  r.messages = run.messages;
  r.payload_bytes = count > 1 ? run.payload_bytes / count : run.payload_bytes;
  r.mailbox_capacity = run.mailbox_capacity;
  r.max_mailbox_occupancy = run.max_mailbox_occupancy;
  r.retries = run.retries;
  r.duplicates = run.duplicates;
  r.kernel_folds = run.kernel_folds;
  r.generic_folds = run.generic_folds;
  r.arena_bytes = run.arena_bytes;
  r.warm_pool = run.warm_pool;
  r.warm_buffers = run.warm_buffers;
  // Both result containers are mirrored whatever the op, so a fused
  // member's report has exactly the shape its solo run would have had
  // (the op's untouched container is per-proc empties, which slice to
  // per-proc empties).
  r.folded.resize(run.folded.size());
  for (std::size_t p = 0; p < run.folded.size(); ++p) {
    r.folded[p] = slice_chunk(run.folded[p], index, chunk, count);
  }
  if (op == OpKind::kBroadcast) {
    // Engine-coalesced runs (bulk, and SegmentRun-segmented) carry one
    // buffer per proc and slice directly; a plan that still reports k
    // per-segment items gets them concatenated first — each member's
    // single logical item is its slice of the segments' concatenation.
    r.items.resize(run.items.size());
    for (std::size_t p = 0; p < run.items.size(); ++p) {
      if (run.items[p].size() == 1) {
        r.items[p].push_back(slice_chunk(run.items[p][0], index, chunk, count));
        continue;
      }
      exec::Bytes full;
      std::size_t total = 0;
      for (const exec::Bytes& seg : run.items[p]) total += seg.size();
      full.reserve(total);
      for (const exec::Bytes& seg : run.items[p]) {
        full.insert(full.end(), seg.begin(), seg.end());
      }
      r.items[p].push_back(slice_chunk(full, index, chunk, count));
    }
  } else {
    r.items.resize(run.items.size());
    for (std::size_t p = 0; p < run.items.size(); ++p) {
      r.items[p].reserve(run.items[p].size());
      for (const exec::Bytes& item : run.items[p]) {
        r.items[p].push_back(slice_chunk(item, index, chunk, count));
      }
    }
  }
  return r;
}

}  // namespace logpc::svc
