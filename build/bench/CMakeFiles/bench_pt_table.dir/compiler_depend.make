# Empty compiler generated dependencies file for bench_pt_table.
# This may be replaced when dependencies are built.
