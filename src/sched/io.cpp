#include "sched/io.hpp"

#include <sstream>
#include <stdexcept>

namespace logpc {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("schedule text, line " + std::to_string(line) +
                              ": " + what);
}

}  // namespace

void write_text(std::ostream& os, const Schedule& s) {
  Schedule sorted = s;
  sorted.sort();
  os << "logpc-schedule v1\n";
  os << "params " << sorted.params().P << " " << sorted.params().L << " "
     << sorted.params().o << " " << sorted.params().g << "\n";
  os << "items " << sorted.num_items() << "\n";
  for (const auto& init : sorted.initials()) {
    os << "init " << init.item << " " << init.proc << " " << init.time
       << "\n";
  }
  for (const auto& op : sorted.sends()) {
    os << "send " << op.start << " " << op.from << " " << op.to << " "
       << op.item;
    if (op.recv_start != kNever) os << " " << op.recv_start;
    os << "\n";
  }
}

std::string to_text(const Schedule& s) {
  std::ostringstream os;
  write_text(os, s);
  return os.str();
}

Schedule read_text(std::istream& is) {
  std::string line;
  std::size_t lineno = 0;
  auto next_line = [&]() -> bool {
    while (std::getline(is, line)) {
      ++lineno;
      const auto first = line.find_first_not_of(" \t");
      if (first == std::string::npos || line[first] == '#') continue;
      return true;
    }
    return false;
  };

  if (!next_line() || line != "logpc-schedule v1") {
    fail(lineno, "expected header 'logpc-schedule v1'");
  }
  if (!next_line()) fail(lineno, "missing params line");
  Params params;
  {
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag >> params.P >> params.L >> params.o >> params.g) ||
        tag != "params") {
      fail(lineno, "malformed params line");
    }
    if (!params.valid()) fail(lineno, "invalid LogP parameters");
  }
  if (!next_line()) fail(lineno, "missing items line");
  int num_items = 0;
  {
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag >> num_items) || tag != "items" || num_items < 1) {
      fail(lineno, "malformed items line");
    }
  }
  Schedule s(params, num_items);
  auto check_proc = [&](ProcId p) {
    if (p < 0 || p >= params.P) fail(lineno, "processor id out of range");
  };
  auto check_item = [&](ItemId i) {
    if (i < 0 || i >= num_items) fail(lineno, "item id out of range");
  };
  while (next_line()) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "init") {
      InitialPlacement init;
      if (!(ls >> init.item >> init.proc >> init.time)) {
        fail(lineno, "malformed init line");
      }
      check_proc(init.proc);
      check_item(init.item);
      s.add_initial(init.item, init.proc, init.time);
    } else if (tag == "send") {
      SendOp op;
      if (!(ls >> op.start >> op.from >> op.to >> op.item)) {
        fail(lineno, "malformed send line");
      }
      Time recv = kNever;
      if (ls >> recv) op.recv_start = recv;
      check_proc(op.from);
      check_proc(op.to);
      check_item(op.item);
      s.add_send(op);
    } else {
      fail(lineno, "unknown record '" + tag + "'");
    }
  }
  s.sort();
  return s;
}

Schedule schedule_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_text(is);
}

namespace {

constexpr char kBinaryMagic[] = "LPSB1\n";
constexpr std::size_t kBinaryMagicLen = 6;

[[noreturn]] void fail_binary(const std::string& what) {
  throw std::invalid_argument("schedule binary: " + what);
}

void put_i64(std::ostream& os, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((u >> (8 * i)) & 0xff);
  }
  os.write(bytes, 8);
}

std::int64_t get_i64(std::istream& is) {
  char bytes[8];
  if (!is.read(bytes, 8)) fail_binary("truncated input");
  std::uint64_t u = 0;
  for (int i = 0; i < 8; ++i) {
    u |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i]))
         << (8 * i);
  }
  return static_cast<std::int64_t>(u);
}

std::size_t get_count(std::istream& is, const char* what) {
  const std::int64_t n = get_i64(is);
  if (n < 0) fail_binary(std::string("negative ") + what + " count");
  return static_cast<std::size_t>(n);
}

}  // namespace

void write_binary(std::ostream& os, const Schedule& s) {
  os.write(kBinaryMagic, kBinaryMagicLen);
  put_i64(os, s.params().P);
  put_i64(os, s.params().L);
  put_i64(os, s.params().o);
  put_i64(os, s.params().g);
  put_i64(os, s.num_items());
  put_i64(os, static_cast<std::int64_t>(s.initials().size()));
  for (const auto& init : s.initials()) {
    put_i64(os, init.item);
    put_i64(os, init.proc);
    put_i64(os, init.time);
  }
  put_i64(os, static_cast<std::int64_t>(s.sends().size()));
  for (const auto& op : s.sends()) {
    put_i64(os, op.start);
    put_i64(os, op.from);
    put_i64(os, op.to);
    put_i64(os, op.item);
    put_i64(os, op.recv_start);
  }
}

Schedule read_binary(std::istream& is) {
  char magic[kBinaryMagicLen];
  if (!is.read(magic, kBinaryMagicLen) ||
      std::string(magic, kBinaryMagicLen) !=
          std::string(kBinaryMagic, kBinaryMagicLen)) {
    fail_binary("bad magic");
  }
  Params params;
  params.P = static_cast<int>(get_i64(is));
  params.L = get_i64(is);
  params.o = get_i64(is);
  params.g = get_i64(is);
  if (!params.valid()) fail_binary("invalid LogP parameters");
  const auto num_items = static_cast<int>(get_i64(is));
  if (num_items < 1) fail_binary("item count must be >= 1");
  Schedule s(params, num_items);
  auto check_proc = [&](std::int64_t p) {
    if (p < 0 || p >= params.P) fail_binary("processor id out of range");
    return static_cast<ProcId>(p);
  };
  auto check_item = [&](std::int64_t i) {
    if (i < 0 || i >= num_items) fail_binary("item id out of range");
    return static_cast<ItemId>(i);
  };
  const std::size_t n_init = get_count(is, "initial");
  for (std::size_t i = 0; i < n_init; ++i) {
    const ItemId item = check_item(get_i64(is));
    const ProcId proc = check_proc(get_i64(is));
    s.add_initial(item, proc, get_i64(is));
  }
  const std::size_t n_sends = get_count(is, "send");
  for (std::size_t i = 0; i < n_sends; ++i) {
    SendOp op;
    op.start = get_i64(is);
    op.from = check_proc(get_i64(is));
    op.to = check_proc(get_i64(is));
    op.item = check_item(get_i64(is));
    op.recv_start = get_i64(is);
    s.add_send(op);
  }
  return s;
}

}  // namespace logpc
