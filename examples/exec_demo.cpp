/// Execution-engine demo: take the plans the paper's algorithms produce
/// and actually run them — real OS threads, one per logical LogP
/// processor, exchanging payload bytes through the engine's lock-free
/// mailboxes.
///
///   1. broadcast a string to P processors and check every copy,
///   2. reduce per-processor strings with non-commutative concatenation
///      (the paper's footnote case: order is part of the answer),
///   3. fit effective (L, o, g) from the run's timestamps, and
///   4. write exec_trace.json: the executed per-worker spans (process 1)
///      next to the plan's simulated timeline (process 2), so the
///      predicted and actual shapes sit in one Perfetto view.
///
///   ./exec_demo [outdir]

#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "api/communicator.hpp"
#include "exec/measure.hpp"
#include "obs/chrome_trace.hpp"
#include "sim/trace.hpp"

int main(int argc, char** argv) {
  using namespace logpc;
  const std::string outdir = argc >= 2 ? std::string(argv[1]) + "/" : "";

  const Params machine{8, 4, 1, 2};
  api::Communicator comm(machine);
  std::cout << "machine: " << machine.to_string() << " -> "
            << machine.capacity() << " message(s) in flight per link\n\n";

  // 1. Broadcast: one payload, P byte-exact copies, on real threads.
  const std::string text = "optimal broadcast, executed";
  const auto* raw = reinterpret_cast<const std::byte*>(text.data());
  const exec::Bytes payload(raw, raw + text.size());
  const exec::ExecReport bcast =
      comm.run_broadcast(std::span<const std::byte>(payload));
  int copies = 0;
  for (ProcId p = 0; p < comm.size(); ++p) {
    copies += bcast.item_at(p, 0) == payload ? 1 : 0;
  }
  std::cout << "broadcast: " << copies << "/" << comm.size()
            << " byte-exact copies, " << bcast.messages << " messages, "
            << "predicted " << bcast.predicted_makespan << " cycles, took "
            << bcast.wall_ns / 1000 << " us\n";

  // 2. Reduction with a NON-commutative operator: concatenation.  The plan
  //    fixes the fold order, so the result is deterministic — any engine
  //    reordering would scramble the string.
  std::vector<exec::Bytes> values;
  for (int p = 0; p < comm.size(); ++p) {
    const std::string s = "[p" + std::to_string(p) + "]";
    const auto* b = reinterpret_cast<const std::byte*>(s.data());
    values.emplace_back(b, b + s.size());
  }
  const exec::ExecReport reduce = comm.run_reduce(
      values,
      [](exec::Bytes& acc, std::span<const std::byte> rhs) {
        acc.insert(acc.end(), rhs.begin(), rhs.end());
      },
      /*root=*/0);
  const exec::Bytes& folded = reduce.folded_at(0);
  std::cout << "reduce (concat): root folded to \""
            << std::string(reinterpret_cast<const char*>(folded.data()),
                           folded.size())
            << "\"\n";

  // 3. What did the machine actually look like?  Fit (L, o, g) from the
  //    run's send/recv timestamps.
  const exec::MeasuredLogP fit = exec::measure(bcast);
  std::cout << "measured: L=" << static_cast<long>(fit.L_ns)
            << "ns o=" << static_cast<long>(fit.o_ns)
            << "ns g=" << static_cast<long>(fit.g_ns) << "ns over "
            << fit.latency_samples << " link samples\n";

  // 4. One Perfetto timeline, two processes: the spans the engine's
  //    workers recorded while executing, and the plan's simulated
  //    per-processor overhead intervals.
  obs::ChromeTraceWriter trace;
  trace.add(obs::TraceRecorder::global(), 1, "executed (real threads)");
  trace.add(sim::Trace::from(comm.bcast()), 2,
            "planned broadcast " + machine.to_string());
  const std::string trace_path = outdir + "exec_trace.json";
  {
    std::ofstream out(trace_path);
    trace.write(out);
  }
  std::cout << "\nwrote " << trace_path << " (" << trace.num_events()
            << " events; load at ui.perfetto.dev or chrome://tracing)\n";
  return 0;
}
