#pragma once

#include "logp/time.hpp"

/// \file message.hpp
/// The point-to-point message — the only communication primitive LogP
/// machines provide.

namespace logpc::sim {

/// A message in flight.
struct Message {
  ProcId from = kNoProc;
  ProcId to = kNoProc;
  ItemId item = 0;
  Time send_start = 0;  ///< cycle the sender began the send overhead
  Time arrival = 0;     ///< send_start + o + L: earliest receivable cycle
};

}  // namespace logpc::sim
