/// Experiment L51 - Section 5: optimal summation capacity n(t) across
/// machines and deadlines, against the reduction baselines; plus the
/// inverse problem (min time to sum n operands).

#include "bench_util.hpp"

#include "baselines/reduce_baselines.hpp"
#include "sum/executor.hpp"
#include "sum/lazy.hpp"

namespace {

using namespace logpc;
using logpc::bench::Table;

void report() {
  logpc::bench::section("operand capacity n(t): optimal vs baselines");
  for (const Params params :
       {Params{64, 3, 0, 1}, Params{64, 8, 1, 4}, Params{256, 2, 0, 2}}) {
    std::cout << params.to_string() << "\n";
    Table t({"t", "optimal", "binomial", "binary", "chain", "sequential",
             "procs used", "lazy-valid"});
    for (const Time tt : {5, 10, 20, 40, 80}) {
      const auto plan = sum::optimal_summation(params, tt);
      t.row(tt, plan.total_operands,
            baselines::binomial_summation(params, tt).total_operands,
            baselines::binary_tree_summation(params, tt).total_operands,
            baselines::chain_summation(params, tt).total_operands,
            baselines::sequential_summation(params, tt).total_operands,
            plan.procs.size(),
            logpc::bench::ok(sum::is_valid_plan(plan)));
    }
    t.print();
  }
  std::cout << "shape: optimal >= binomial >= binary >> chain at moderate\n"
               "t; all parallel schemes dwarf sequential once t clears the\n"
               "first transfer L+1+2o.\n";

  logpc::bench::section("inverse: min time to sum n operands");
  Table inv({"n", "LogP(64,3,0,1)", "LogP(64,8,1,4)", "sequential t=n-1"});
  for (const Count n : {10u, 100u, 1000u, 10000u, 100000u}) {
    inv.row(n,
            sum::min_time_for_operands(Params{64, 3, 0, 1}, n),
            sum::min_time_for_operands(Params{64, 8, 1, 4}, n),
            n - 1);
  }
  inv.print();

  logpc::bench::section("speedup over one processor (n fixed by t)");
  Table sp({"t", "n(t)", "sequential t for same n", "speedup"});
  const Params params{64, 3, 0, 1};
  for (const Time tt : {10, 20, 40}) {
    const Count n = sum::max_operands(params, tt);
    const auto seq = static_cast<double>(n - 1);
    std::ostringstream os;
    os << std::fixed << std::setprecision(1)
       << seq / static_cast<double>(tt) << "x";
    sp.row(tt, n, n - 1, os.str());
  }
  sp.print();
}

void BM_MaxOperands(benchmark::State& state) {
  const Params params{static_cast<int>(state.range(0)), 3, 0, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sum::max_operands(params, 60));
  }
}
BENCHMARK(BM_MaxOperands)->Arg(64)->Arg(1024);

void BM_MinTimeForOperands(benchmark::State& state) {
  const Params params{256, 3, 0, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sum::min_time_for_operands(params, static_cast<Count>(state.range(0))));
  }
}
BENCHMARK(BM_MinTimeForOperands)->Arg(1000)->Arg(1000000);

}  // namespace

LOGPC_BENCH_MAIN(report)
