#include "svc/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace logpc::svc {

const char* qos_name(QoS q) noexcept {
  switch (q) {
    case QoS::kInteractive: return "interactive";
    case QoS::kBatch: return "batch";
    case QoS::kBestEffort: return "best_effort";
  }
  return "?";
}

Scheduler::Tenant& Scheduler::at(TenantId tenant) {
  if (tenant < 0 || static_cast<std::size_t>(tenant) >= tenants_.size()) {
    throw std::invalid_argument("svc::Scheduler: unknown tenant id " +
                                std::to_string(tenant));
  }
  return tenants_[static_cast<std::size_t>(tenant)];
}

const Scheduler::Tenant& Scheduler::at(TenantId tenant) const {
  return const_cast<Scheduler*>(this)->at(tenant);
}

TenantId Scheduler::add_tenant(TenantConfig cfg) {
  cfg.weight = std::max<std::uint32_t>(cfg.weight, 1);
  cfg.queue_capacity = std::max<std::size_t>(cfg.queue_capacity, 1);
  if (cfg.rate_per_sec > 0 && cfg.burst <= 0) {
    cfg.burst = std::max(1.0, cfg.rate_per_sec);
  }
  Tenant t;
  t.stride = kStrideUnit / cfg.weight;
  // Join at the current virtual time: a tenant registered late must not
  // start with an epoch of accumulated credit over incumbents.
  t.pass = vtime_;
  t.tokens = cfg.burst;  // a fresh bucket starts full
  t.cfg = std::move(cfg);
  tenants_.push_back(std::move(t));
  return static_cast<TenantId>(tenants_.size() - 1);
}

Admit Scheduler::offer(TenantId tenant, QoS qos, std::uint64_t handle,
                       double now_sec) {
  Tenant& t = at(tenant);
  if (t.cfg.rate_per_sec > 0) {
    if (!t.bucket_started) {
      t.bucket_started = true;
      t.last_refill = now_sec;
    }
    const double elapsed = std::max(0.0, now_sec - t.last_refill);
    t.tokens = std::min(t.cfg.burst, t.tokens + elapsed * t.cfg.rate_per_sec);
    t.last_refill = now_sec;
    if (t.tokens < 1.0) return Admit::kRateLimited;
    t.tokens -= 1.0;
  }
  if (t.depth >= t.cfg.queue_capacity) return Admit::kQueueFull;
  if (t.depth == 0) {
    // Waking from idle: rejoin at the current virtual time (never move
    // backwards) so idleness is not bankable credit against busy tenants.
    t.pass = std::max(t.pass, vtime_);
  }
  t.q[static_cast<std::size_t>(qos)].push_back(handle);
  ++t.depth;
  ++queued_;
  return Admit::kAdmitted;
}

bool Scheduler::pick(TenantId* tenant, std::uint64_t* handle) {
  if (queued_ == 0) return false;
  for (std::size_t qc = 0; qc < kQoSClasses; ++qc) {
    // Highest non-empty QoS class wins outright; fair share applies among
    // the tenants with work *in that class*.
    Tenant* best = nullptr;
    TenantId best_id = -1;
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      Tenant& t = tenants_[i];
      if (t.q[qc].empty()) continue;
      if (best == nullptr || t.pass < best->pass) {
        best = &t;
        best_id = static_cast<TenantId>(i);
      }
    }
    if (best == nullptr) continue;
    *tenant = best_id;
    *handle = best->q[qc].front();
    best->q[qc].pop_front();
    --best->depth;
    --queued_;
    vtime_ = best->pass;
    best->pass += best->stride;
    return true;
  }
  return false;  // unreachable while queued_ is kept consistent
}

bool Scheduler::take(TenantId tenant, QoS qos, std::uint64_t handle) {
  Tenant& t = at(tenant);
  std::deque<std::uint64_t>& q = t.q[static_cast<std::size_t>(qos)];
  const auto it = std::find(q.begin(), q.end(), handle);
  if (it == q.end()) return false;
  q.erase(it);
  --t.depth;
  --queued_;
  // Same fair-share charge as a pick, but no vtime_ update: the batch's
  // lead request already moved the virtual clock, and siblings taken out
  // of turn must not drag it around.
  t.pass += t.stride;
  return true;
}

std::size_t Scheduler::queue_depth(TenantId tenant) const {
  return at(tenant).depth;
}

std::size_t Scheduler::queue_depth(TenantId tenant, QoS qos) const {
  return at(tenant).q[static_cast<std::size_t>(qos)].size();
}

const TenantConfig& Scheduler::config(TenantId tenant) const {
  return at(tenant).cfg;
}

}  // namespace logpc::svc
