#pragma once

#include <atomic>
#include <string>
#include <string_view>
#include <thread>

#include "svc/service.hpp"

/// \file introspect.hpp
/// The live introspection endpoint of a CollectiveService: a deliberately
/// tiny blocking HTTP/1.1 server over plain POSIX sockets (no third-party
/// dependency), serving the four pages an operator reaches for first:
///
///   GET /healthz   liveness — "ok" while the service object exists
///   GET /metrics   Prometheus text exposition 0.0.4 of the global
///                  MetricsRegistry (what a scraper would pull)
///   GET /statusz   JSON snapshot of the daemon: admission state, engine
///                  pools, per-tenant config + counters + per-QoS queue
///                  depths, flight-recorder summary
///   GET /tracez    JSON of the most recent runtime spans plus a complete
///                  Chrome-trace (chrome://tracing / Perfetto) timeline of
///                  the spans and the last profiled run's per-rank
///                  component tracks
///
/// Design constraints, in order: zero dependencies, zero effect on the
/// serving path (one accept thread, every page rendered from snapshots
/// taken under the service's ordinary locks), and testability — the
/// route handler is a pure function of (method, target) exposed as
/// handle(), so the conformance tests can lint full response bodies
/// without racing a socket, while the integration tests exercise the real
/// TCP path on an ephemeral port (Options::port = 0, read back via
/// port()).
///
/// One request per connection ("Connection: close"): introspection traffic
/// is a human or a scraper every few seconds, not a load target.  The
/// server binds loopback by default; exposing it wider is the caller's
/// explicit choice (CollectiveService::Options::introspect_bind).

namespace logpc::svc {

class IntrospectServer {
 public:
  struct Options {
    std::string bind = "127.0.0.1";  ///< IPv4 dotted-quad to bind
    int port = 0;                    ///< 0 = kernel-assigned ephemeral port
  };

  /// What one route produces; serialize() turns it into the bytes on the
  /// wire.
  struct HttpResponse {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
    [[nodiscard]] std::string serialize() const;
  };

  /// Binds, listens and starts the accept thread.  Throws
  /// std::runtime_error when the socket cannot be bound (port taken, bad
  /// address).  `service` must outlive the server — CollectiveService owns
  /// and destroys it first in shutdown().
  IntrospectServer(const CollectiveService& service, Options options);
  ~IntrospectServer();  ///< stops the listener and joins the thread
  IntrospectServer(const IntrospectServer&) = delete;
  IntrospectServer& operator=(const IntrospectServer&) = delete;

  /// The bound TCP port (the ephemeral one when Options::port was 0).
  [[nodiscard]] int port() const { return port_; }

  /// Pure routing: the response for one request line.  `target` may carry
  /// a query string; it is ignored.  Unknown paths get 404, non-GET
  /// methods 405.
  [[nodiscard]] HttpResponse handle(std::string_view method,
                                    std::string_view target) const;

 private:
  void serve();
  [[nodiscard]] std::string statusz_json() const;
  [[nodiscard]] std::string tracez_json() const;

  const CollectiveService& service_;
  Options opts_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace logpc::svc
