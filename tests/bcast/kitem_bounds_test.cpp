#include "bcast/kitem_bounds.hpp"

#include <gtest/gtest.h>

namespace logpc::bcast {
namespace {

TEST(KItemBounds, Figure2Instance) {
  // P = 10, L = 3, k = 8: B(9) = 7, k* = 2 -> general lower bound
  // 7 + 3 + 7 - 2 = 15; single-sending lower 7 + 3 + 8 - 1 = 17;
  // Theorem 3.6 upper 7 + 6 + 8 - 2 = 19.
  const auto b = kitem_bounds(10, 3, 8);
  EXPECT_EQ(b.B, 7);
  EXPECT_EQ(b.k_star, 2u);
  EXPECT_EQ(b.general_lower, 15);
  EXPECT_EQ(b.single_sending_lower, 17);
  EXPECT_EQ(b.single_sending_upper, 19);
  EXPECT_EQ(b.continuous_upper, 17);
}

TEST(KItemBounds, Figure5Instance) {
  // P - 1 = 13, L = 3, k = 14: B(13) = 8 -> buffered/single-sending
  // optimum L + B + k - 1 = 3 + 8 + 13 = 24 (the Figure 5 completion).
  const auto b = kitem_bounds(14, 3, 14);
  EXPECT_EQ(b.B, 8);
  EXPECT_EQ(b.single_sending_lower, 24);
}

TEST(KItemBounds, SingleItemReducesToSingleBroadcastBound) {
  for (Time L = 1; L <= 6; ++L) {
    for (int P = 2; P <= 40; ++P) {
      const auto b = kitem_bounds(P, L, 1);
      EXPECT_EQ(b.general_lower, b.B + L) << "P=" << P << " L=" << L;
      EXPECT_EQ(b.single_sending_lower, b.B + L);
    }
  }
}

TEST(KItemBounds, OrderingOfBounds) {
  for (Time L = 1; L <= 8; ++L) {
    for (int P = 2; P <= 60; P += 3) {
      for (int k = 1; k <= 20; k += 4) {
        const auto b = kitem_bounds(P, L, k);
        EXPECT_LE(b.general_lower, b.single_sending_lower);
        EXPECT_LE(b.single_sending_lower, b.single_sending_upper);
        // k* <= L makes the two lower bounds at most L apart.
        EXPECT_LE(b.single_sending_lower - b.general_lower, L);
        EXPECT_EQ(b.continuous_upper, b.single_sending_lower);
      }
    }
  }
}

TEST(KItemBounds, TwoProcessorsExactPipeline) {
  // P = 2: the source feeds one receiver; k items need k - 1 + L steps.
  for (Time L = 1; L <= 5; ++L) {
    for (int k = 1; k <= 6; ++k) {
      const auto b = kitem_bounds(2, L, k);
      EXPECT_EQ(b.B, 0);
      EXPECT_EQ(b.general_lower, L + k - 1);
      EXPECT_EQ(b.single_sending_lower, L + k - 1);
    }
  }
}

TEST(KItemBounds, RejectsBadArguments) {
  EXPECT_THROW((void)kitem_bounds(1, 3, 2), std::invalid_argument);
  EXPECT_THROW((void)kitem_bounds(4, 0, 2), std::invalid_argument);
  EXPECT_THROW((void)kitem_bounds(4, 3, 0), std::invalid_argument);
}

}  // namespace
}  // namespace logpc::bcast
