#include "exec/thread_pool.hpp"

#include <stdexcept>

namespace logpc::exec {

ThreadPool::ThreadPool(unsigned initial) {
  std::unique_lock lock(mu_);
  ensure_unlocked(initial);
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::ensure_unlocked(unsigned n) {
  while (threads_.size() < n) {
    const auto index = static_cast<unsigned>(threads_.size());
    threads_.emplace_back([this, index] { worker_loop(index); });
  }
}

void ThreadPool::reserve(unsigned n) {
  std::unique_lock lock(mu_);
  ensure_unlocked(n);
}

unsigned ThreadPool::size() const {
  std::unique_lock lock(mu_);
  return static_cast<unsigned>(threads_.size());
}

void ThreadPool::run(int tasks, const std::function<void(int)>& fn) {
  if (tasks <= 0) return;
  std::unique_lock serial(run_mu_);
  std::unique_lock lock(mu_);
  ensure_unlocked(static_cast<unsigned>(tasks));
  fn_ = &fn;
  tasks_ = tasks;
  done_ = 0;
  ++epoch_;
  ++epoch_count_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return done_ == tasks_; });
  fn_ = nullptr;
  tasks_ = 0;
}

void ThreadPool::worker_loop(unsigned index) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      if (static_cast<int>(index) < tasks_) {
        fn = fn_;
      } else {
        // Not part of this epoch; wait for the next one.
        continue;
      }
    }
    (*fn)(static_cast<int>(index));
    {
      std::unique_lock lock(mu_);
      ++done_;
      if (done_ == tasks_) done_cv_.notify_all();
    }
  }
}

}  // namespace logpc::exec
