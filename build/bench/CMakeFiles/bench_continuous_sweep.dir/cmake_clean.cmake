file(REMOVE_RECURSE
  "CMakeFiles/bench_continuous_sweep.dir/bench_continuous_sweep.cpp.o"
  "CMakeFiles/bench_continuous_sweep.dir/bench_continuous_sweep.cpp.o.d"
  "bench_continuous_sweep"
  "bench_continuous_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_continuous_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
