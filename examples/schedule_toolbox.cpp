/// Schedule toolbox: a small CLI over the serialization format -
/// generate, validate, render, and inspect schedule files, so schedules
/// can be shipped between tools (or hand-edited and re-audited).
///
///   ./schedule_toolbox gen <collective> [args...]   write a schedule to stdout
///       collectives: bcast P L o g | kitem P L k | alltoall P L o g [k]
///                    reduce P L o g
///   ./schedule_toolbox check   < schedule.txt       run the validator
///   ./schedule_toolbox render  < schedule.txt       reception table + timeline
///   ./schedule_toolbox stats   < schedule.txt       aggregate statistics
///   ./schedule_toolbox simulate < schedule.txt      replay on the engine

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "api/communicator.hpp"
#include "sched/io.hpp"
#include "sched/metrics.hpp"
#include "sched/stats.hpp"
#include "sim/engine.hpp"
#include "validate/checker.hpp"
#include "viz/table.hpp"
#include "viz/timeline.hpp"

namespace {

using namespace logpc;

int cmd_gen(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "gen: missing collective\n";
    return 2;
  }
  const std::string what = argv[2];
  auto arg = [&](int i, long def) {
    return argc > i ? std::atol(argv[i]) : def;
  };
  if (what == "bcast" || what == "alltoall" || what == "reduce") {
    const Params params{static_cast<int>(arg(3, 8)), arg(4, 6), arg(5, 2),
                        arg(6, 4)};
    const api::Communicator comm(params);
    if (what == "bcast") {
      write_text(std::cout, comm.bcast());
    } else if (what == "alltoall") {
      write_text(std::cout, comm.alltoall(static_cast<int>(arg(7, 1))));
    } else {
      write_text(std::cout, comm.reduce().schedule);
    }
    return 0;
  }
  if (what == "kitem") {
    const auto r = bcast::kitem_broadcast(static_cast<int>(arg(3, 10)),
                                          arg(4, 3),
                                          static_cast<int>(arg(5, 4)));
    write_text(std::cout, r.schedule);
    return 0;
  }
  std::cerr << "gen: unknown collective '" << what << "'\n";
  return 2;
}

int cmd_check(const Schedule& s) {
  // Try strict first, then the two documented relaxations.
  const auto strict = validate::check(s);
  if (strict.ok()) {
    std::cout << "OK (strict LogP rules, complete broadcast)\n";
    return 0;
  }
  const auto relaxed = validate::check(
      s, {.forbid_duplicate_receive = false,
          .require_complete = false,
          .allow_duplex_overhead = true});
  if (relaxed.ok()) {
    std::cout << "OK under relaxations (duplex overheads allowed, "
                 "completeness/duplicates not required)\nstrict report:\n"
              << strict.summary() << "\n";
    return 0;
  }
  std::cout << "INVALID:\n" << relaxed.summary() << "\n";
  return 1;
}

int cmd_simulate(const Schedule& s) {
  // Replay each processor's sends in order, as early as items allow.
  class Replay : public sim::Program {
   public:
    explicit Replay(std::vector<std::pair<ProcId, ItemId>> sends)
        : sends_(std::move(sends)) {}
    void on_item(sim::Context& ctx, ItemId) override {
      while (next_ < sends_.size() && ctx.has(sends_[next_].second)) {
        ctx.send(sends_[next_].first, sends_[next_].second);
        ++next_;
      }
    }

   private:
    std::vector<std::pair<ProcId, ItemId>> sends_;
    std::size_t next_ = 0;
  };
  sim::Engine engine(s.params(), s.num_items());
  for (ProcId p = 0; p < s.params().P; ++p) {
    std::vector<std::pair<ProcId, ItemId>> sends;
    for (const auto& op : s.sends()) {
      if (op.from == p) sends.emplace_back(op.to, op.item);
    }
    engine.set_program(p, std::make_unique<Replay>(std::move(sends)));
  }
  for (const auto& init : s.initials()) {
    engine.place(init.item, init.proc, init.time);
  }
  const auto run = engine.run();
  std::cout << "simulated " << run.messages << " messages; engine makespan "
            << run.makespan << " vs schedule makespan " << s.makespan()
            << (run.makespan <= s.makespan() ? " (as planned or better)\n"
                                             : " (SLOWER - schedule has "
                                               "slack the engine kept)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: schedule_toolbox gen|check|render|stats|simulate\n";
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "gen") return cmd_gen(argc, argv);

  Schedule s;
  try {
    s = logpc::read_text(std::cin);
  } catch (const std::exception& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return 2;
  }
  if (cmd == "check") return cmd_check(s);
  if (cmd == "render") {
    std::cout << logpc::viz::reception_table(s) << "\n"
              << logpc::viz::render_timeline(s);
    return 0;
  }
  if (cmd == "stats") {
    const auto st = logpc::schedule_stats(s);
    std::cout << "makespan        " << st.makespan << "\n"
              << "messages        " << st.messages << "\n"
              << "total overhead  " << st.total_overhead << "\n"
              << "busy fraction   avg " << st.avg_busy_fraction << ", max "
              << st.max_busy_fraction << "\n"
              << "peak in flight  " << st.peak_in_flight << "\n"
              << "max sends/proc  " << st.max_sends_per_proc << "\n"
              << "max recvs/proc  " << st.max_recvs_per_proc << "\n";
    return 0;
  }
  if (cmd == "simulate") return cmd_simulate(s);
  std::cerr << "unknown command '" << cmd << "'\n";
  return 2;
}
