#include "logp/params.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace logpc {
namespace {

TEST(Params, DefaultIsValid) {
  Params p;
  EXPECT_TRUE(p.valid());
  EXPECT_NO_THROW(p.require_valid());
}

TEST(Params, PaperFigure1Machine) {
  const Params p{8, 6, 2, 4};
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(p.transfer_time(), 10);  // L + 2o = 6 + 4
  EXPECT_EQ(p.child_label(0, 0), 10);
  EXPECT_EQ(p.child_label(0, 1), 14);
  EXPECT_EQ(p.child_label(0, 2), 18);
  EXPECT_EQ(p.child_label(0, 3), 22);
  EXPECT_EQ(p.child_label(10, 0), 20);
  EXPECT_FALSE(p.is_postal());
}

TEST(Params, PostalFactory) {
  const Params p = Params::postal(10, 3);
  EXPECT_EQ(p.P, 10);
  EXPECT_EQ(p.L, 3);
  EXPECT_EQ(p.o, 0);
  EXPECT_EQ(p.g, 1);
  EXPECT_TRUE(p.is_postal());
  EXPECT_EQ(p.transfer_time(), 3);
  EXPECT_EQ(p.capacity(), 3);
}

TEST(Params, CapacityIsCeilLOverG) {
  EXPECT_EQ((Params{4, 6, 2, 4}).capacity(), 2);   // ceil(6/4)
  EXPECT_EQ((Params{4, 8, 0, 4}).capacity(), 2);   // exact division
  EXPECT_EQ((Params{4, 1, 0, 5}).capacity(), 1);   // L < g
  EXPECT_EQ((Params{4, 10, 0, 1}).capacity(), 10);
}

TEST(Params, InvalidParameterCombinationsThrow) {
  EXPECT_THROW((Params{0, 1, 0, 1}).require_valid(), std::invalid_argument);
  EXPECT_THROW((Params{1, 0, 0, 1}).require_valid(), std::invalid_argument);
  EXPECT_THROW((Params{1, 1, -1, 1}).require_valid(), std::invalid_argument);
  EXPECT_THROW((Params{1, 1, 0, 0}).require_valid(), std::invalid_argument);
  EXPECT_THROW((Params{-3, 1, 0, 1}).require_valid(), std::invalid_argument);
}

TEST(Params, ZeroOverheadAllowed) {
  EXPECT_TRUE((Params{2, 1, 0, 1}).valid());
}

TEST(Params, StreamFormat) {
  std::ostringstream os;
  os << Params{8, 6, 2, 4};
  EXPECT_EQ(os.str(), "LogP(P=8, L=6, o=2, g=4)");
  EXPECT_EQ((Params{8, 6, 2, 4}).to_string(), "LogP(P=8, L=6, o=2, g=4)");
}

TEST(Params, Equality) {
  EXPECT_EQ((Params{8, 6, 2, 4}), (Params{8, 6, 2, 4}));
  EXPECT_NE((Params{8, 6, 2, 4}), (Params{8, 6, 2, 3}));
}

}  // namespace
}  // namespace logpc
