file(REMOVE_RECURSE
  "CMakeFiles/test_words.dir/bcast/words_test.cpp.o"
  "CMakeFiles/test_words.dir/bcast/words_test.cpp.o.d"
  "test_words"
  "test_words.pdb"
  "test_words[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_words.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
