#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bcast/tree.hpp"
#include "bcast/words.hpp"

/// \file continuous.hpp
/// Section 3.1-3.3: continuous broadcast with block-cyclic processor
/// assignments.
///
/// A source generates a new item every step (g = 1); every item must reach
/// all other P - 1 = P(t) processors.  The delay lower bound is L + B(P-1)
/// = L + t, achieved exactly when every item is broadcast along its own
/// copy of the optimal t-step tree and the staggered trees never ask one
/// processor to receive twice (or an item twice) in a step.
///
/// The block-cyclic scheme: each internal tree node of out-degree r gets a
/// block of r processors serving that node round-robin (member j handles
/// items congruent to j mod r); between internal receptions a member
/// receives the leaf roles named by the block's word; one processor is
/// receive-only.  plan_continuous solves the word-assignment problem
/// (words.hpp) over the optimal tree; plan_from_tree runs the same
/// machinery over an arbitrary (e.g. pruned, Theorem 3.5) tree.
/// emit_k_items unrolls a plan into a finite, fully-checkable schedule for
/// k items - which is precisely the paper's optimal-continuous-phase k-item
/// broadcast finishing at L + B(P-1) + k - 1 (Corollary 3.1).

namespace logpc::bcast {

/// One block of the plan.
struct ContinuousBlock {
  int tree_node = 0;             ///< internal node index in `tree`
  int r = 1;                     ///< block size = node out-degree
  Time d = 0;                    ///< node delay
  Word word;                     ///< length r-1
  std::vector<ProcId> members;   ///< size r; member j serves items = j (mod r)
};

/// A complete continuous-broadcast plan.
struct ContinuousPlan {
  Params params;          ///< postal machine, P = (tree size) + 1
  ProcId source = 0;
  BroadcastTree tree;     ///< per-item broadcast tree (root informed at L)
  std::vector<Time> letter_delays;  ///< delay named by each *base* letter
  int max_wait = 0;       ///< word letters may be buffered variants (Thm 3.8)
  std::vector<ContinuousBlock> blocks;
  ProcId receive_only = kNoProc;
  int receive_only_letter = 0;      ///< base letter index

  /// The delay every item achieves: L + (tree makespan).  Equals the lower
  /// bound L + B(P-1) when the tree is the optimal t-step tree; one more
  /// for the Theorem 3.5 pruned trees.
  [[nodiscard]] Time delay() const { return params.L + tree.makespan(); }
};

struct ContinuousResult {
  SolveStatus status = SolveStatus::kInfeasible;
  std::optional<ContinuousPlan> plan;  ///< set iff kSolved
  std::uint64_t nodes_explored = 0;
};

/// Builds the minimum-delay block-cyclic plan for postal latency L and tree
/// depth t (serving P(t) receivers + source).  Returns kInfeasible when the
/// exhaustive word search proves no block-cyclic assignment over the
/// optimal tree exists (the L = 2 situation of Theorem 3.4, and the
/// paper's L = 4, t = 8 remark), kBudgetExhausted when undecided.
[[nodiscard]] ContinuousResult plan_continuous(
    Time L, Time t, std::uint64_t budget = 20'000'000);

/// Runs the block-cyclic solve over an arbitrary broadcast tree (postal,
/// latency L = tree.params().L).  Used by the Theorem 3.5 pruned-tree
/// search to achieve delay L + t + 1 when L = 2, and - with max_wait > 0 -
/// by the Theorem 3.8 buffered construction, where some word positions
/// receive items that have waited in the buffer.
[[nodiscard]] ContinuousResult plan_from_tree(
    const BroadcastTree& tree, std::uint64_t budget = 20'000'000,
    int max_wait = 0);

/// Unrolls the plan for items 0..k-1 (item i is generated at the source at
/// cycle i).  The result is a complete broadcast schedule: every item
/// reaches every processor with delay exactly plan.delay(), so the whole
/// broadcast finishes at plan.delay() + k - 1.
[[nodiscard]] Schedule emit_k_items(const ContinuousPlan& plan, int k);

/// The steady-state reception pattern for rendering Figure 2's "Receiving
/// Pattern": rows[proc][x] = role delay received at steps congruent to x
/// modulo the processor's period (block size; 1 for the receive-only
/// processor), or {-1} for the source.
[[nodiscard]] std::vector<std::vector<Time>> reception_pattern(
    const ContinuousPlan& plan);

}  // namespace logpc::bcast
