#include "bcast/three_phase.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "sched/metrics.hpp"
#include "search/continuous_search.hpp"

namespace logpc::bcast {

namespace {

// Endgame list scheduler: spreads every item to the `receivers` using the
// spare send slots of already-informed processors, most-starved receiver
// first, oldest item first.
class Endgame {
 public:
  Endgame(const Params& params, int k, const Schedule& base, int senders)
      : params_(params), k_(k), senders_(senders) {
    const auto sP = static_cast<std::size_t>(params.P);
    const auto sk = static_cast<std::size_t>(k);
    avail_.assign(sP, std::vector<Time>(sk, kNever));
    pending_.assign(sP, std::vector<bool>(sk, false));
    send_busy_.resize(sP);
    recv_busy_.resize(sP);
    last_recv_.assign(sP, -1);
    for (ItemId i = 0; i < k; ++i) avail_[0][static_cast<std::size_t>(i)] = 0;
    for (const auto& op : base.sends()) {
      send_busy_[static_cast<std::size_t>(op.from)].insert(op.start);
      recv_busy_[static_cast<std::size_t>(op.to)].insert(base.recv_start(op));
      auto& a = avail_[static_cast<std::size_t>(op.to)]
                      [static_cast<std::size_t>(op.item)];
      a = std::min(a, base.available_at(op));
    }
  }

  // Runs to completion; appends the endgame sends to `out`.
  void run(Schedule& out, Time cap) {
    int missing = (params_.P - 1 - senders_) * k_;
    std::vector<std::vector<std::pair<ProcId, ItemId>>> ring(
        static_cast<std::size_t>(params_.L) + 1);
    for (Time s = 0; missing > 0; ++s) {
      if (s > cap) {
        throw std::logic_error("three_phase: endgame failed to converge");
      }
      for (const auto& [to, item] : ring[static_cast<std::size_t>(
               s % (params_.L + 1))]) {
        avail_[static_cast<std::size_t>(to)][static_cast<std::size_t>(item)] =
            s;
        pending_[static_cast<std::size_t>(to)]
                [static_cast<std::size_t>(item)] = false;
        --missing;
      }
      ring[static_cast<std::size_t>(s % (params_.L + 1))].clear();
      if (missing == 0) break;
      std::vector<bool> sender_used(static_cast<std::size_t>(params_.P),
                                    false);
      std::vector<bool> receiver_used(static_cast<std::size_t>(params_.P),
                                      false);
      for (ItemId item = 0; item < k_; ++item) {
        for (;;) {
          const ProcId to = pick_receiver(item, s, receiver_used);
          if (to == kNoProc) break;
          const ProcId from = pick_sender(item, s, sender_used);
          if (from == kNoProc) break;
          sender_used[static_cast<std::size_t>(from)] = true;
          receiver_used[static_cast<std::size_t>(to)] = true;
          pending_[static_cast<std::size_t>(to)]
                  [static_cast<std::size_t>(item)] = true;
          recv_busy_[static_cast<std::size_t>(to)].insert(s + params_.L);
          send_busy_[static_cast<std::size_t>(from)].insert(s);
          last_recv_[static_cast<std::size_t>(to)] = s + params_.L;
          ring[static_cast<std::size_t>((s + params_.L) % (params_.L + 1))]
              .emplace_back(to, item);
          out.add_send(s, from, to, item);
        }
      }
    }
  }

 private:
  Params params_;
  int k_;
  int senders_;
  std::vector<std::vector<Time>> avail_;
  std::vector<std::vector<bool>> pending_;
  std::vector<std::set<Time>> send_busy_;
  std::vector<std::set<Time>> recv_busy_;
  std::vector<Time> last_recv_;

  // Most-starved endgame receiver lacking `item` with a free arrival slot.
  ProcId pick_receiver(ItemId item, Time s,
                       const std::vector<bool>& receiver_used) const {
    ProcId best = kNoProc;
    for (ProcId q = static_cast<ProcId>(senders_) + 1; q < params_.P; ++q) {
      if (receiver_used[static_cast<std::size_t>(q)]) continue;
      if (avail_[static_cast<std::size_t>(q)][static_cast<std::size_t>(
              item)] != kNever) {
        continue;
      }
      if (pending_[static_cast<std::size_t>(q)]
                  [static_cast<std::size_t>(item)]) {
        continue;
      }
      if (recv_busy_[static_cast<std::size_t>(q)].contains(s + params_.L)) {
        continue;
      }
      if (best == kNoProc || last_recv_[static_cast<std::size_t>(q)] <
                                 last_recv_[static_cast<std::size_t>(best)]) {
        best = q;
      }
    }
    return best;
  }

  // Any informed processor (never the single-sending source) with a free
  // send slot; prefer endgame receivers (their slots are otherwise idle).
  ProcId pick_sender(ItemId item, Time s,
                     const std::vector<bool>& sender_used) const {
    ProcId fallback = kNoProc;
    for (ProcId p = 1; p < params_.P; ++p) {
      if (sender_used[static_cast<std::size_t>(p)]) continue;
      const Time have =
          avail_[static_cast<std::size_t>(p)][static_cast<std::size_t>(item)];
      if (have == kNever || have > s) continue;
      if (send_busy_[static_cast<std::size_t>(p)].contains(s)) continue;
      if (p > static_cast<ProcId>(senders_)) return p;  // idle receiver
      if (fallback == kNoProc) fallback = p;
    }
    return fallback;
  }
};

}  // namespace

ThreePhaseResult kitem_three_phase(int P, Time L, int k) {
  if (P < 2) throw std::invalid_argument("kitem_three_phase: P >= 2");
  if (L < 1) throw std::invalid_argument("kitem_three_phase: L >= 1");
  if (k < 1) throw std::invalid_argument("kitem_three_phase: k >= 1");

  ThreePhaseResult result;
  result.bounds = kitem_bounds(P, L, k);
  const int m = P - 1;
  const Fib fib(L);
  const Time t = result.bounds.B;
  const Time depth = std::max<Time>(0, t - L);
  const int senders =
      static_cast<int>(std::min<Count>(fib.f(depth), static_cast<Count>(m)));

  // Tree phase: the block-cyclic pipeline over the (t-L)-step tree covers
  // the senders with per-item delay L + depth (+ tiny slack on the odd
  // infeasible shapes).
  const auto plan = search::best_continuous_plan(L, senders);
  if (plan.status != SolveStatus::kSolved) {
    throw std::logic_error("kitem_three_phase: tree phase unsolvable");
  }
  const Schedule base = emit_k_items(*plan.plan, k);

  // Assemble on the full machine: all items at the source at cycle 0.
  Schedule out(Params::postal(P, L), k);
  for (ItemId i = 0; i < k; ++i) out.add_initial(i, 0, 0);
  for (const auto& op : base.sends()) out.add_send(op);

  Endgame endgame(out.params(), k, out, senders);
  const Time cap = 4 * result.bounds.single_sending_upper + 8 * L + 16;
  endgame.run(out, cap);
  out.sort();

  result.schedule = std::move(out);
  result.completion = completion_time(result.schedule);
  result.senders = senders;
  result.receivers = m - senders;
  return result;
}

}  // namespace logpc::bcast
