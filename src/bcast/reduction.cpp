#include "bcast/reduction.hpp"

namespace logpc::bcast {

std::vector<std::vector<ProcId>> ReductionPlan::arrival_order() const {
  std::vector<std::vector<std::pair<Time, ProcId>>> incoming(
      static_cast<std::size_t>(params.P));
  for (const auto& op : schedule.sends()) {
    incoming[static_cast<std::size_t>(op.to)].emplace_back(
        schedule.available_at(op), op.from);
  }
  std::vector<std::vector<ProcId>> order(static_cast<std::size_t>(params.P));
  for (std::size_t p = 0; p < incoming.size(); ++p) {
    std::sort(incoming[p].begin(), incoming[p].end());
    for (const auto& [at, from] : incoming[p]) order[p].push_back(from);
  }
  return order;
}

ReductionPlan optimal_reduction(const Params& params, ProcId root) {
  params.require_valid();
  if (root < 0 || root >= params.P) {
    throw std::invalid_argument("optimal_reduction: bad root");
  }
  const auto tree = BroadcastTree::optimal(params, params.P);
  const Time B = tree.makespan();

  ReductionPlan plan;
  plan.params = params;
  plan.root = root;
  plan.completion = B;
  plan.schedule = Schedule(params, 1);
  // Node index -> processor: node 0 is the root; others fill in index
  // order, skipping the root's id (mirror of BroadcastTree::to_schedule).
  std::vector<ProcId> procs(static_cast<std::size_t>(tree.size()));
  procs[0] = root;
  ProcId next = 0;
  for (std::size_t i = 1; i < procs.size(); ++i) {
    if (next == root) ++next;
    procs[i] = next++;
  }
  for (ProcId p = 0; p < params.P; ++p) plan.schedule.add_initial(0, p, 0);
  // The broadcast message parent->child with send start tau becomes the
  // reduction message child->parent with send start B - label(child):
  // its value lands at the parent at B - tau.
  for (int i = 1; i < tree.size(); ++i) {
    const auto& node = tree.node(i);
    plan.schedule.add_send(B - node.label, procs[static_cast<std::size_t>(i)],
                           procs[static_cast<std::size_t>(node.parent)], 0);
  }
  plan.schedule.sort();
  return plan;
}

}  // namespace logpc::bcast
