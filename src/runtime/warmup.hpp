#pragma once

#include <cstdint>
#include <vector>

#include "runtime/planner.hpp"

/// \file warmup.hpp
/// Cache precompute: fill a Planner for a parameter grid before traffic
/// arrives, on a small std::thread pool.  A serving process typically
/// either warms a grid at startup or loads a snapshot (snapshot.hpp) and
/// warms the difference.  The planner's in-flight dedup makes warmup safe
/// to run concurrently with live requests — a request for a key being
/// warmed simply waits for that one build.

namespace logpc::runtime {

/// Cartesian parameter grid describing the keys to precompute.
struct WarmupGrid {
  std::vector<Problem> problems;
  std::vector<Params> machines;
  /// Item/operand counts, applied to the k-dependent problems only.
  std::vector<std::int64_t> ks = {1};

  /// Expands to canonical keys, deduplicated (normalization folds grid
  /// points onto shared keys, e.g. every k for a single-item problem).
  /// Grid points whose key factory rejects the arguments are skipped.
  [[nodiscard]] std::vector<PlanKey> keys() const;
};

struct WarmupReport {
  std::size_t requested = 0;   ///< keys handed to the pool
  std::size_t planned = 0;     ///< keys that resolved to a plan
  std::size_t failed = 0;      ///< keys whose builder threw
  std::uint64_t built = 0;     ///< builder runs this warmup (cache misses)
};

/// Plans every key on `threads` workers (0 = hardware concurrency).  Before
/// spawning, pre-extends the shared Fibonacci tables (logp/fib.hpp) for
/// every postal latency in the grid, so the B(P)/k* queries inside the
/// builders start warm instead of racing to rebuild the same sequence.
WarmupReport warmup(Planner& planner, const std::vector<PlanKey>& keys,
                    unsigned threads = 0);

/// Convenience: expand the grid and warm it.
WarmupReport warmup(Planner& planner, const WarmupGrid& grid,
                    unsigned threads = 0);

}  // namespace logpc::runtime
