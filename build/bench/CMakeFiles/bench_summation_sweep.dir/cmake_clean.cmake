file(REMOVE_RECURSE
  "CMakeFiles/bench_summation_sweep.dir/bench_summation_sweep.cpp.o"
  "CMakeFiles/bench_summation_sweep.dir/bench_summation_sweep.cpp.o.d"
  "bench_summation_sweep"
  "bench_summation_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_summation_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
