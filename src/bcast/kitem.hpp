#pragma once

#include "bcast/continuous.hpp"
#include "bcast/kitem_bounds.hpp"
#include "sched/schedule.hpp"

/// \file kitem.hpp
/// Section 3.4: broadcasting k items from one source, single-sending, in
/// the postal model.
///
/// Two constructions:
///  * Block-cyclic (preferred): solve a continuous plan for the P-1
///    receivers - at the optimal delay when possible (Corollary 3.1), else
///    with the smallest achievable slack sigma via the Theorem 3.5 pruning
///    search - and unroll it: completion B(P-1) + L + sigma + k - 1.
///    sigma = 0 is the exact single-sending optimum; sigma <= L - 1 stays
///    within the Theorem 3.6 guarantee (empirically sigma <= 1 suffices).
///  * Greedy fallback/ablation: a deterministic scheduler realizing the
///    paper's three-phase shape (initial transmission at step i, greedy
///    tree growth, greedy endgame) with no optimality guarantee.

namespace logpc::bcast {

/// Which construction produced a k-item schedule.
enum class KItemMethod {
  kContinuousBlockCyclic,  ///< B(P-1) + L + slack + k - 1
  kGreedy,                 ///< fallback, no guarantee
};

struct KItemResult {
  Schedule schedule;
  KItemMethod method = KItemMethod::kGreedy;
  KItemBounds bounds;
  Time completion = 0;  ///< == completion_time(schedule)
  int slack = 0;        ///< extra delay over the optimal L + B(P-1) per item
};

/// Single-sending broadcast of items 0..k-1 (all available at the source,
/// processor 0, from cycle 0) to all P processors.  Picks the best
/// applicable construction.
[[nodiscard]] KItemResult kitem_broadcast(int P, Time L, int k);

/// The greedy scheduler alone (ablations / non-exact P).  Single-sending:
/// the source transmits item i exactly once, at step i.
[[nodiscard]] Schedule kitem_greedy(int P, Time L, int k);

}  // namespace logpc::bcast
