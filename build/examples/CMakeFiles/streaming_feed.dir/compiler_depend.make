# Empty compiler generated dependencies file for streaming_feed.
# This may be replaced when dependencies are built.
