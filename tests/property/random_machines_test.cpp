#include <gtest/gtest.h>

#include <random>

#include "bcast/all_to_all.hpp"
#include "bcast/kitem.hpp"
#include "bcast/kitem_buffered.hpp"
#include "bcast/reduction.hpp"
#include "bcast/single_item.hpp"
#include "sched/io.hpp"
#include "sched/metrics.hpp"
#include "sum/executor.hpp"
#include "sum/lazy.hpp"
#include "validate/checker.hpp"

/// Property sweeps over randomly drawn machines (seeded, deterministic):
/// every construction must validate, meet its closed-form completion time,
/// and round-trip through serialization, for machines nobody hand-picked.

namespace logpc {
namespace {

std::vector<Params> random_machines(std::uint64_t seed, int count,
                                    int max_P, Time max_L, Time max_o,
                                    Time max_g) {
  std::mt19937_64 rng(seed);
  std::vector<Params> out;
  std::uniform_int_distribution<int> dP(2, max_P);
  std::uniform_int_distribution<Time> dL(1, max_L);
  std::uniform_int_distribution<Time> dO(0, max_o);
  std::uniform_int_distribution<Time> dG(1, max_g);
  while (static_cast<int>(out.size()) < count) {
    Params p{dP(rng), dL(rng), dO(rng), dG(rng)};
    out.push_back(p);
  }
  return out;
}

TEST(RandomMachines, OptimalBroadcastAlwaysValidAndTight) {
  for (const Params& params : random_machines(1, 60, 80, 20, 5, 10)) {
    const Schedule s = bcast::optimal_single_item(params);
    const auto check = validate::check(s);
    ASSERT_TRUE(check.ok()) << params.to_string() << "\n" << check.summary();
    EXPECT_EQ(completion_time(s), bcast::B_of_P(params, params.P))
        << params.to_string();
  }
}

TEST(RandomMachines, BroadcastRoundTripsThroughText) {
  for (const Params& params : random_machines(2, 25, 60, 15, 4, 8)) {
    const Schedule s = bcast::optimal_single_item(params);
    EXPECT_EQ(schedule_from_text(to_text(s)), s) << params.to_string();
  }
}

TEST(RandomMachines, AllToAllAlwaysMeetsBound) {
  for (const Params& params : random_machines(3, 40, 40, 20, 4, 8)) {
    const Schedule s = bcast::all_to_all(params);
    const auto check = validate::check(s, {.allow_duplex_overhead = true});
    ASSERT_TRUE(check.ok()) << params.to_string() << "\n" << check.summary();
    EXPECT_EQ(completion_time(s), bcast::all_to_all_lower_bound(params));
  }
}

TEST(RandomMachines, ReductionMirrorsBroadcast) {
  std::mt19937_64 rng(4);
  for (const Params& params : random_machines(4, 40, 60, 15, 4, 8)) {
    std::uniform_int_distribution<ProcId> dRoot(0, params.P - 1);
    const ProcId root = dRoot(rng);
    const auto plan = bcast::optimal_reduction(params, root);
    EXPECT_EQ(plan.completion, bcast::B_of_P(params, params.P));
    const auto check = validate::check(
        plan.schedule,
        {.forbid_duplicate_receive = false, .require_complete = false});
    ASSERT_TRUE(check.ok()) << params.to_string() << "\n" << check.summary();
  }
}

TEST(RandomMachines, SummationPlansValidAndExecutable) {
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<Time> dT(0, 60);
  for (Params params : random_machines(5, 40, 40, 10, 3, 8)) {
    params.g = std::max(params.g, params.o + 1);  // summation requirement
    const Time t = dT(rng);
    const auto plan = sum::optimal_summation(params, t);
    ASSERT_TRUE(sum::is_valid_plan(plan))
        << params.to_string() << " t=" << t << "\n"
        << sum::check_plan(plan).summary();
    const auto n = static_cast<long long>(plan.total_operands);
    EXPECT_EQ(sum::execute_iota_sum(plan), n * (n - 1) / 2);
  }
}

TEST(RandomPostal, KItemAlwaysWithinTheorem36) {
  std::mt19937_64 rng(6);
  std::uniform_int_distribution<int> dP(2, 40);
  std::uniform_int_distribution<Time> dL(1, 7);
  std::uniform_int_distribution<int> dK(1, 10);
  for (int i = 0; i < 25; ++i) {
    const int P = dP(rng);
    const Time L = dL(rng);
    const int k = dK(rng);
    const auto r = bcast::kitem_broadcast(P, L, k);
    const auto check = validate::check(r.schedule);
    ASSERT_TRUE(check.ok())
        << "P=" << P << " L=" << L << " k=" << k << "\n" << check.summary();
    EXPECT_TRUE(is_single_sending(r.schedule, 0));
    EXPECT_LE(r.completion, r.bounds.single_sending_upper)
        << "P=" << P << " L=" << L << " k=" << k;
    EXPECT_GE(r.completion, r.bounds.general_lower);
  }
}

TEST(RandomPostal, BufferedAlwaysMeetsTheorem38) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int> dP(2, 40);
  std::uniform_int_distribution<Time> dL(1, 7);
  std::uniform_int_distribution<int> dK(1, 10);
  for (int i = 0; i < 25; ++i) {
    const int P = dP(rng);
    const Time L = dL(rng);
    const int k = dK(rng);
    const auto r = bcast::kitem_buffered(P, L, k);
    EXPECT_EQ(r.completion, r.bounds.single_sending_lower)
        << "P=" << P << " L=" << L << " k=" << k;
    const auto check = validate::check(
        r.schedule, {.buffered = true, .buffer_limit = 2});
    ASSERT_TRUE(check.ok())
        << "P=" << P << " L=" << L << " k=" << k << "\n" << check.summary();
  }
}

}  // namespace
}  // namespace logpc
