#pragma once

#include <cstddef>
#include <memory>
#include <vector>

/// \file arena.hpp
/// Per-run bump-pointer buffer arena for the execution engine's payload
/// staging.  A run needs one byte slot per (processor, item) pair that the
/// plan actually touches; before this arena each slot was its own heap
/// `std::vector<std::byte>`, allocated lazily inside the receive hot path.
/// The arena carves all slots out of a handful of 64-byte-aligned chunks on
/// the main thread *before* workers are dispatched, so the per-message path
/// is a plain memcpy into cache-line-aligned memory — no allocator, no
/// lock, and typed combine kernels always see aligned operands.
///
/// Concurrency contract: allocate() is called only while the run is
/// single-threaded (setup).  Workers then write through the returned
/// pointers — each slot has exactly one owning worker, and the thread-pool
/// completion barrier publishes the bytes back to the main thread.  The
/// arena must outlive every pointer it handed out (the engine keeps it on
/// the run's stack frame, which outlives the pool epoch).

namespace logpc::exec {

class BufferArena {
 public:
  static constexpr std::size_t kAlignment = 64;

  /// `initial_chunk` is the first chunk's payload capacity in bytes;
  /// later chunks double until kMaxChunk.
  explicit BufferArena(std::size_t initial_chunk = 1 << 16)
      : next_chunk_(initial_chunk < kAlignment ? kAlignment : initial_chunk) {}

  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;
  BufferArena(BufferArena&&) = default;
  BufferArena& operator=(BufferArena&&) = default;

  /// 64-byte-aligned bump allocation; never returns nullptr (throws
  /// std::bad_alloc when the chunk allocation itself fails).  A zero-size
  /// request still returns a unique aligned pointer so empty payload slots
  /// stay distinguishable.
  std::byte* allocate(std::size_t n);

  /// Rewinds every chunk without releasing memory: the next run on the
  /// same arena reuses the reserved chunks.
  void reset() noexcept;

  /// Total bytes handed out (after per-allocation alignment rounding).
  [[nodiscard]] std::size_t bytes_used() const noexcept { return used_; }
  /// Total chunk capacity currently reserved.
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    return reserved_;
  }
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunks_.size();
  }

 private:
  static constexpr std::size_t kMaxChunk = std::size_t{1} << 26;  // 64 MiB

  struct AlignedDelete {
    void operator()(std::byte* p) const noexcept {
      ::operator delete[](p, std::align_val_t{kAlignment});
    }
  };
  struct Chunk {
    std::unique_ptr<std::byte[], AlignedDelete> mem;
    std::size_t cap = 0;
    std::size_t used = 0;
  };

  Chunk& grow(std::size_t at_least);

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  ///< index of the chunk being bumped
  std::size_t next_chunk_;
  std::size_t used_ = 0;
  std::size_t reserved_ = 0;
};

}  // namespace logpc::exec
