# Empty compiler generated dependencies file for test_fib.
# This may be replaced when dependencies are built.
