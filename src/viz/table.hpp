#pragma once

#include <string>

#include "sched/schedule.hpp"

/// \file table.hpp
/// Reception tables: rows = processors, columns = cycles, entries = the
/// 1-based item number becoming available (Figures 2, 4 and 5).

namespace logpc::viz {

/// Renders the reception table of `s`.  Buffered receives (recv_start later
/// than arrival, Figure 5's delayed items) are bracketed, e.g. "[7]".
/// Initial placements are shown in parentheses on the owning processor.
[[nodiscard]] std::string reception_table(const Schedule& s);

}  // namespace logpc::viz
