# Empty compiler generated dependencies file for schedule_toolbox.
# This may be replaced when dependencies are built.
