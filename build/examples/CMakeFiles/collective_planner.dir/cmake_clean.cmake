file(REMOVE_RECURSE
  "CMakeFiles/collective_planner.dir/collective_planner.cpp.o"
  "CMakeFiles/collective_planner.dir/collective_planner.cpp.o.d"
  "collective_planner"
  "collective_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collective_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
