#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "runtime/plan_cache.hpp"

/// \file snapshot.hpp
/// Binary plan-cache snapshots: persist every cached plan so a serving
/// process can start hot — save on shutdown (or from a cron'd warmer), load
/// before taking traffic, then warm only the difference.
///
/// Format: header "logpc-plansnap v2\n" (v1 files, which predate the
/// membership mask, still load), a 64-bit entry count, then per
/// entry the canonical key, the scalar metadata, and the schedule in the
/// sched/io binary form.  Loading re-canonicalizes each key through
/// PlanKey::make and structurally validates each schedule, so a corrupt or
/// stale snapshot throws instead of poisoning the cache.

namespace logpc::runtime {

/// Writes every entry of `cache` to `os` (least-recently-used first, so a
/// later load replays recency).  Returns the number of plans written.
std::size_t save_snapshot(const PlanCache& cache, std::ostream& os);

/// Convenience: save_snapshot to a file.  Throws std::runtime_error when
/// the file cannot be written.
std::size_t save_snapshot(const PlanCache& cache, const std::string& path);

/// Inserts every snapshot entry into `cache` (in stream order; entries
/// beyond capacity evict per LRU as usual).  Returns the number of plans
/// loaded.  Throws std::invalid_argument on malformed input.
std::size_t load_snapshot(PlanCache& cache, std::istream& is);

/// Convenience: load_snapshot from a file.  Throws std::runtime_error when
/// the file cannot be read.
std::size_t load_snapshot(PlanCache& cache, const std::string& path);

}  // namespace logpc::runtime
