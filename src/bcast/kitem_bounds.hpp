#pragma once

#include "logp/fib.hpp"
#include "logp/params.hpp"

/// \file kitem_bounds.hpp
/// Section 3's lower and upper bounds for broadcasting k items from one
/// source in the postal model (g = 1, o = 0).

namespace logpc::bcast {

/// All the Section 3 bounds for one (P, L, k) instance.
struct KItemBounds {
  int P = 2;
  Time L = 1;
  int k = 1;
  Time B = 0;        ///< B(P-1): single-item broadcast time to P-1 receivers
  Count k_star = 0;  ///< k* of Theorem 3.1 (k* <= L)

  /// Theorem 3.1: any algorithm needs >= B(P-1) + L + (k-1) - k* steps
  /// (never below the single-item bound B(P-1) + L).
  Time general_lower = 0;

  /// Any single-sending schedule needs >= B(P-1) + L + k - 1 steps (Section
  /// 3.4): the last item leaves the source at k-1 or later, then needs
  /// L + B(P-1) more.
  Time single_sending_lower = 0;

  /// Theorem 3.6: a single-sending schedule achieving B(P-1) + 2L + k - 2
  /// exists for all k, L, P.
  Time single_sending_upper = 0;

  /// Corollary 3.1 / Theorem 3.8: L + B(P-1) + k - 1, achieved by the
  /// optimal continuous phase (exact P) or by the buffered model.
  Time continuous_upper = 0;
};

/// Computes every bound.  Requires P >= 2, L >= 1, k >= 1.
[[nodiscard]] KItemBounds kitem_bounds(int P, Time L, int k);

}  // namespace logpc::bcast
