# Empty dependencies file for test_kitem_bounds.
# This may be replaced when dependencies are built.
