#include "logp/hier.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace logpc {

HierParams HierParams::uniform(int P, int clusters, const Params& intra_class,
                               const Params& cross_class) {
  if (P < 1) throw std::invalid_argument("HierParams: P must be >= 1");
  if (clusters < 1 || clusters > P) {
    throw std::invalid_argument("HierParams: clusters must be in [1, P]");
  }
  HierParams h;
  h.intra = intra_class;
  h.intra.P = P;
  h.cross = cross_class;
  h.cross.P = clusters;
  h.intra.require_valid();
  h.cross.require_valid();
  h.cluster_of.resize(static_cast<std::size_t>(P));
  const int base = P / clusters;
  const int extra = P % clusters;  // first `extra` clusters get base + 1
  int rank = 0;
  for (int c = 0; c < clusters; ++c) {
    const int n = base + (c < extra ? 1 : 0);
    for (int i = 0; i < n; ++i) {
      h.cluster_of[static_cast<std::size_t>(rank++)] = c;
    }
  }
  return h;
}

bool HierParams::is_uniform_blocks() const {
  if (!valid()) return false;
  const HierParams u = uniform(P(), num_clusters(), intra, cross);
  return cluster_of == u.cluster_of;
}

bool HierParams::valid() const {
  if (!intra.valid() || !cross.valid()) return false;
  const int total = intra.P;
  const int clusters = cross.P;
  if (clusters < 1 || clusters > total) return false;
  if (cluster_of.size() != static_cast<std::size_t>(total)) return false;
  std::vector<int> count(static_cast<std::size_t>(clusters), 0);
  for (const int c : cluster_of) {
    if (c < 0 || c >= clusters) return false;
    ++count[static_cast<std::size_t>(c)];
  }
  return std::all_of(count.begin(), count.end(),
                     [](int n) { return n > 0; });
}

void HierParams::require_valid() const {
  if (!valid()) {
    throw std::invalid_argument("invalid HierParams: " + to_string());
  }
}

std::vector<ProcId> HierParams::members(int c) const {
  std::vector<ProcId> out;
  for (ProcId r = 0; r < P(); ++r) {
    if (cluster_of[static_cast<std::size_t>(r)] == c) out.push_back(r);
  }
  return out;
}

ProcId HierParams::leader(int c) const {
  for (ProcId r = 0; r < P(); ++r) {
    if (cluster_of[static_cast<std::size_t>(r)] == c) return r;
  }
  throw std::invalid_argument("HierParams::leader: empty cluster");
}

Params HierParams::flat() const {
  Params f;
  f.P = P();
  f.L = std::max(intra.L, cross.L);
  f.o = std::max(intra.o, cross.o);
  f.g = std::max(intra.g, cross.g);
  return f;
}

std::string HierParams::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const HierParams& h) {
  os << "P=" << h.P() << " clusters=" << h.num_clusters() << " intra(L="
     << h.intra.L << " o=" << h.intra.o << " g=" << h.intra.g << ") cross(L="
     << h.cross.L << " o=" << h.cross.o << " g=" << h.cross.g << ")";
  return os;
}

}  // namespace logpc
