#pragma once

#include <cstdint>
#include <limits>

/// \file time.hpp
/// Fundamental scalar types shared by every subsystem.
///
/// All times in this library are integer processor cycles, as in the LogP
/// paper: L, o and g are "measured in units of processor cycles" and every
/// schedule event happens at an integral cycle.

namespace logpc {

/// A point in (or duration of) simulated time, in processor cycles.
using Time = std::int64_t;

/// Index of a processor, 0-based.  The paper numbers processors 1..P; we use
/// 0..P-1 throughout and note the offset where it matters for figures.
using ProcId = std::int32_t;

/// Index of a broadcast item (0-based: item 0 is the paper's item 1 / "a").
using ItemId = std::int32_t;

/// Sentinel for "never" / "not yet scheduled".
inline constexpr Time kNever = std::numeric_limits<Time>::max();

/// Sentinel for "no processor".
inline constexpr ProcId kNoProc = -1;

}  // namespace logpc
