file(REMOVE_RECURSE
  "CMakeFiles/test_bcast_baselines.dir/baselines/bcast_baselines_test.cpp.o"
  "CMakeFiles/test_bcast_baselines.dir/baselines/bcast_baselines_test.cpp.o.d"
  "test_bcast_baselines"
  "test_bcast_baselines.pdb"
  "test_bcast_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bcast_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
