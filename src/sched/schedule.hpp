#pragma once

#include <iosfwd>
#include <optional>
#include <vector>

#include "logp/params.hpp"
#include "sched/ops.hpp"

/// \file schedule.hpp
/// A complete communication schedule: the machine, the items' initial
/// placements, and every transmission.  This is the lingua franca between
/// the schedule constructors (src/bcast, src/sum), the independent validator
/// (src/validate), the simulator (src/sim) and the renderers (src/viz).

namespace logpc {

/// A communication schedule on a LogP machine.
///
/// Invariants maintained by the constructors in this library (and enforced
/// by validate::check): all processor ids in [0, params.P), all item ids in
/// [0, num_items), sends sorted by construction order (call sort() for
/// time order).
class Schedule {
 public:
  Schedule() = default;
  Schedule(Params params, int num_items)
      : params_(params), num_items_(num_items) {}

  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] int num_items() const { return num_items_; }
  void set_num_items(int n) { num_items_ = n; }

  [[nodiscard]] const std::vector<InitialPlacement>& initials() const {
    return initials_;
  }
  [[nodiscard]] const std::vector<SendOp>& sends() const { return sends_; }

  /// Declares that `item` exists at `proc` from cycle `time` on.
  void add_initial(ItemId item, ProcId proc, Time time = 0);

  /// Appends a transmission.  Returns the time the item becomes available at
  /// the receiver (= effective recv_start + o).
  Time add_send(SendOp op);

  /// Convenience: strict-model send of `item` from `from` starting at `t`.
  Time add_send(Time t, ProcId from, ProcId to, ItemId item);

  /// Effective receive-overhead start of `op`: op.recv_start if set,
  /// otherwise op.start + o + L.
  [[nodiscard]] Time recv_start(const SendOp& op) const;

  /// Cycle at which op's item becomes available at the receiver.
  [[nodiscard]] Time available_at(const SendOp& op) const;

  /// Sorts sends by (start, from, to, item) for stable output.
  void sort();

  /// First cycle at which `proc` holds `item`, or kNever.  O(sends).
  [[nodiscard]] Time first_available(ProcId proc, ItemId item) const;

  /// Last cycle at which any transmission completes (max available_at), or
  /// the max initial time when there are no sends.
  [[nodiscard]] Time makespan() const;

  friend bool operator==(const Schedule&, const Schedule&) = default;

 private:
  Params params_{};
  int num_items_ = 1;
  std::vector<InitialPlacement> initials_;
  std::vector<SendOp> sends_;
};

std::ostream& operator<<(std::ostream& os, const Schedule& s);

}  // namespace logpc
