#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// \file report.hpp
/// Violation reporting for the schedule checker.

namespace logpc::validate {

/// Which LogP rule (or problem goal) a schedule violated.
enum class Rule {
  kBadProcessor,     ///< processor id out of [0, P)
  kBadItem,          ///< item id out of [0, num_items)
  kSelfSend,         ///< from == to
  kItemNotHeld,      ///< sender does not hold the item at send start
  kSendGap,          ///< two sends from one processor closer than g
  kRecvGap,          ///< two receives at one processor closer than g
  kOverheadOverlap,  ///< overlapping o-cycle busy intervals (o > 0)
  kLatency,          ///< recv_start != arrival (strict) or < arrival (buffered)
  kBufferOverflow,   ///< more than buffer_limit items waiting (buffered model)
  kDuplicateReceive, ///< a processor receives the same item twice
  kCapacity,         ///< more than ceil(L/g) messages in flight from/to a proc
  kIncomplete,       ///< some item never reaches some processor
  kDeliveryOrder,    ///< executed delivery sequence diverges from the plan
};

[[nodiscard]] std::string_view rule_name(Rule r);

/// One rule violation, with a human-readable locus.
struct Violation {
  Rule rule;
  std::string detail;
};

std::ostream& operator<<(std::ostream& os, const Violation& v);

/// Outcome of validate::check.
struct CheckResult {
  std::vector<Violation> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }

  /// "OK" or a newline-joined list of violations (capped at 20).
  [[nodiscard]] std::string summary() const;
};

}  // namespace logpc::validate
