#include "baselines/kitem_baselines.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace logpc::baselines {

Schedule serialized_broadcast(const Params& params, int k) {
  params.require_valid();
  if (k < 1) throw std::invalid_argument("serialized_broadcast: k >= 1");
  const auto tree = bcast::BroadcastTree::optimal(params, params.P);
  const Time B = tree.makespan();
  Schedule out(params, k);
  std::vector<ProcId> procs(static_cast<std::size_t>(params.P));
  std::iota(procs.begin(), procs.end(), ProcId{0});
  for (ItemId i = 0; i < k; ++i) {
    out.add_initial(i, 0, 0);
    tree.emit(out, i, static_cast<Time>(i) * B, procs);
  }
  out.sort();
  return out;
}

Schedule pipelined_tree_broadcast(const bcast::BroadcastTree& tree, int k) {
  if (k < 1) {
    throw std::invalid_argument("pipelined_tree_broadcast: k >= 1");
  }
  const Params& params = tree.params();
  if (tree.size() > params.P) {
    throw std::invalid_argument(
        "pipelined_tree_broadcast: tree larger than machine");
  }
  Time max_degree = 1;
  for (const auto& node : tree.nodes()) {
    max_degree = std::max(max_degree,
                          static_cast<Time>(node.children.size()));
  }
  // Item period: a node must finish its sends for item i (max_degree slots
  // of g) before starting item i+1's.
  const Time period = max_degree * params.g;
  Schedule out(params, k);
  std::vector<ProcId> procs(static_cast<std::size_t>(tree.size()));
  std::iota(procs.begin(), procs.end(), ProcId{0});
  for (ItemId i = 0; i < k; ++i) {
    out.add_initial(i, 0, 0);
    tree.emit(out, i, static_cast<Time>(i) * period, procs);
  }
  out.sort();
  return out;
}

Time bnk_stated_time(int P, Time L, int k, Time c_L) {
  if (P < 2 || L < 1 || k < 1) {
    throw std::invalid_argument("bnk_stated_time: bad arguments");
  }
  const Fib fib(L);
  return 2 * fib.B_of_P(static_cast<Count>(P)) + k + c_L * L;
}

}  // namespace logpc::baselines
