#include "sim/implicit_sim.hpp"

#include <algorithm>

namespace logpc::sim {

namespace {

ImplicitRunResult violation(std::int64_t node, const std::string& what) {
  ImplicitRunResult r;
  r.error = "node " + std::to_string(node) + ": " + what;
  return r;
}

}  // namespace

ImplicitRunResult run_implicit(const runtime::ImplicitPlan& plan) {
  const std::int64_t P = plan.num_nodes();
  const Time T = plan.params().transfer_time();
  const Time g = plan.params().g;
  Time makespan = 0;
  for (std::int64_t n = 1; n < P; ++n) {
    const std::int64_t p = plan.parent(n);
    if (p < 0 || p >= n) {
      return violation(n, "parent " + std::to_string(p) +
                              " does not precede its child");
    }
    const int rank = plan.child_rank(n);
    if (rank < 0) return violation(n, "negative child rank");
    const Time lab = plan.label(n);
    const Time expect = plan.label(p) + T + static_cast<Time>(rank) * g;
    if (lab != expect) {
      return violation(n, "label " + std::to_string(lab) +
                              " != parent label + T + rank*g (" +
                              std::to_string(expect) + ")");
    }
    if (plan.child(p, rank) != n) {
      return violation(n, "child(parent, rank) does not round-trip");
    }
    makespan = std::max(makespan, lab);
  }
  if (makespan != plan.completion()) {
    ImplicitRunResult r;
    r.error = "makespan " + std::to_string(makespan) +
              " != plan completion " + std::to_string(plan.completion());
    return r;
  }
  ImplicitRunResult r;
  r.makespan = makespan;
  r.messages = static_cast<std::uint64_t>(P - 1);
  r.ranks = static_cast<std::uint64_t>(P);
  r.ok = true;
  return r;
}

}  // namespace logpc::sim
