#include "sum/summation_tree.hpp"

#include <gtest/gtest.h>

#include <set>

#include "baselines/reduce_baselines.hpp"
#include "sum/lazy.hpp"
#include "validate/checker.hpp"

namespace logpc::sum {
namespace {

const Params kFig6{8, 5, 2, 4};  // t = 28 in the figure

TEST(Summation, Figure6PlanShape) {
  const auto plan = optimal_summation(kFig6, 28);
  EXPECT_EQ(plan.t, 28);
  // The (L+1, o, g) = (6, 2, 4) universal tree is the Figure 1 tree; its 8
  // cheapest labels are 0, 10, 14, 18, 20, 22, 24, 24 -> send times
  // 28, 18, 14, 10, 8, 6, 4, 4.
  ASSERT_EQ(plan.procs.size(), 8u);
  std::multiset<Time> sends;
  for (const auto& pp : plan.procs) sends.insert(pp.send_time);
  EXPECT_EQ(sends, (std::multiset<Time>{4, 4, 6, 8, 10, 14, 18, 28}));
  EXPECT_TRUE(is_valid_plan(plan)) << check_plan(plan).summary();
}

TEST(Summation, Figure6OperandCount) {
  // Lemma 5.1: n = sum_i (S_i - (o+1) k_i + 1).  Sum S = 92, 7 receptions
  // at o+1 = 3 each, 8 processors: 92 - 21 + 8 = 79.
  const auto plan = optimal_summation(kFig6, 28);
  EXPECT_EQ(plan.total_operands, 79u);
  EXPECT_EQ(max_operands(kFig6, 28), 79u);
}

TEST(Summation, LazyPropertyAndMessageTiming) {
  for (const Params params : {kFig6, Params{5, 3, 0, 1}, Params{12, 2, 1, 4},
                              Params{9, 4, 0, 2}}) {
    for (const Time t : {6, 11, 17, 25}) {
      const auto plan = optimal_summation(params, t);
      EXPECT_TRUE(is_valid_plan(plan))
          << params.to_string() << " t=" << t << "\n"
          << check_plan(plan).summary();
    }
  }
}

TEST(Summation, TimingViewSatisfiesLogPRules) {
  const auto plan = optimal_summation(kFig6, 28);
  const Schedule view = plan.timing_view();
  const auto check = validate::check(
      view, {.forbid_duplicate_receive = false, .require_complete = false});
  EXPECT_TRUE(check.ok()) << check.summary();
}

TEST(Summation, SingleProcessorSumsTPlusOne) {
  for (Time t = 0; t <= 10; ++t) {
    const auto plan = optimal_summation(Params{1, 3, 1, 4}, t);
    EXPECT_EQ(plan.total_operands, static_cast<Count>(t) + 1);
    EXPECT_EQ(plan.procs.size(), 1u);
  }
}

TEST(Summation, MoreTimeNeverSumsFewer) {
  const Params params{16, 3, 1, 3};
  Count prev = 0;
  for (Time t = 0; t <= 40; ++t) {
    const Count n = max_operands(params, t);
    EXPECT_GE(n, prev) << "t=" << t;
    // Each extra cycle adds at least one operand at the root alone.
    EXPECT_GE(n, prev + (t > 0 ? 1 : 0));
    prev = n;
  }
}

TEST(Summation, MinTimeInvertsMaxOperands) {
  const Params params{6, 2, 0, 1};
  for (const Count n : {1u, 2u, 5u, 17u, 60u, 200u}) {
    const Time t = min_time_for_operands(params, n);
    EXPECT_GE(max_operands(params, t), n);
    if (t > 0) {
      EXPECT_LT(max_operands(params, t - 1), n);
    }
  }
}

TEST(Summation, ReversalCorrespondence) {
  // The communication pattern is the reversal of an optimal broadcast on
  // (L+1, o, g): the multiset {t - S_i} equals the label multiset of the
  // optimal (L+1) tree.
  const Params params{10, 4, 1, 3};
  const Time t = 30;
  const auto plan = optimal_summation(params, t);
  const auto tree =
      bcast::BroadcastTree::optimal(reversal_params(params), 10);
  std::multiset<Time> labels;
  for (const auto& n : tree.nodes()) labels.insert(n.label);
  std::multiset<Time> reversed;
  for (const auto& pp : plan.procs) reversed.insert(t - pp.send_time);
  EXPECT_EQ(labels, reversed);
}

TEST(Summation, UsesFewerProcessorsWhenTimeIsShort) {
  // A second processor only helps once its send time t - 10 (first
  // reversal-tree transfer) covers the o+1 reception cost it induces: the
  // participation horizon is t - o.
  const Params params{8, 5, 2, 4};  // transfer on reversal machine = 10
  EXPECT_EQ(optimal_summation(params, 9).procs.size(), 1u);
  EXPECT_EQ(optimal_summation(params, 11).procs.size(), 1u);
  EXPECT_EQ(optimal_summation(params, 12).procs.size(), 2u);
  // The helper is exactly break-even at t = 12 and strictly useful later.
  EXPECT_EQ(optimal_summation(params, 12).total_operands,
            optimal_summation(params, 11).total_operands + 1);
  EXPECT_EQ(max_operands(params, 13), max_operands(params, 12) + 2);
}

TEST(Summation, BeatsOrMatchesEveryBaseline) {
  using namespace baselines;
  for (const Params params : {Params{16, 3, 0, 1}, Params{32, 2, 1, 4},
                              Params{12, 6, 2, 4}}) {
    for (const Time t : {8, 16, 30, 45}) {
      const Count best = max_operands(params, t);
      EXPECT_GE(best, binary_tree_summation(params, t).total_operands);
      EXPECT_GE(best, binomial_summation(params, t).total_operands);
      EXPECT_GE(best, sequential_summation(params, t).total_operands);
      EXPECT_GE(best, chain_summation(params, t).total_operands);
    }
  }
}

TEST(Summation, PlanFromTreeRejectsMismatches) {
  const Params params{4, 3, 0, 1};
  const auto wrong_tree = bcast::BroadcastTree::optimal(params, 4);
  EXPECT_THROW(plan_from_tree(params, wrong_tree, 20), std::invalid_argument);
  const auto tree =
      bcast::BroadcastTree::optimal(reversal_params(params), 4);
  EXPECT_THROW(plan_from_tree(params, tree, tree.makespan() - 1),
               std::invalid_argument);
  EXPECT_NO_THROW(plan_from_tree(params, tree, tree.makespan()));
}

TEST(Summation, RequiresGapAtLeastOverheadPlusOne) {
  EXPECT_THROW(optimal_summation(Params{4, 3, 2, 2}, 10),
               std::invalid_argument);
  EXPECT_NO_THROW(optimal_summation(Params{4, 3, 2, 3}, 10));
}

TEST(Summation, RejectsNegativeTime) {
  EXPECT_THROW(optimal_summation(Params{4, 3, 0, 1}, -1),
               std::invalid_argument);
}

}  // namespace
}  // namespace logpc::sum
