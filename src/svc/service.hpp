#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/communicator.hpp"
#include "exec/engine.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "runtime/planner.hpp"
#include "svc/fusion.hpp"
#include "svc/request.hpp"
#include "svc/scheduler.hpp"

/// \file service.hpp
/// The collective-service daemon: the long-running, multi-tenant serving
/// layer over the whole stack.  Where api::Communicator answers one call
/// at a time — plan, compile, run, return — a CollectiveService accepts
/// *requests* from logical tenants into per-tenant bounded queues, admits
/// them through QoS / fair-share / rate-limit policy (svc::Scheduler), and
/// dispatches them onto a small set of **persistent engine pools**: one
/// exec::Engine per pool, threads prewarmed and run contexts kept warm, so
/// back-to-back collectives pay neither thread spawn/join nor per-link
/// allocation (ExecReport::warm_pool / warm_buffers on every Response
/// prove it).
///
/// Data path of one admitted request:
///
///   submit(tenant, req) ── admission (Scheduler::offer: rate bucket,
///     queue bound) ──> per-tenant queue ── pool thread (Scheduler::pick:
///     QoS class, then weighted stride fair-share) ──> compiled Program
///     (cached per (op, root, segments) via Communicator::compile; plans
///     come from the shared thread-safe Planner) ──> Engine::run on the
///     pool's warm engine ──> promise fulfilled, future resolves with the
///     Response.
///
/// High-throughput path (svc/fusion.hpp): after picking a request whose
/// QoS class opts in, the pool holds a short fusion window
/// (Options::fusion_window_us) and coalesces every queued same-shape
/// request — any tenant — into one engine run over concatenated buffers,
/// fanning the result back out per member; plan lookup, RunContext reuse
/// and worker wakeups are paid once per batch.  Broadcast payloads at or
/// above Options::segment_threshold additionally split into the Section 3
/// single-sending k-item schedule, overlapping successive segments'
/// transfer rounds instead of serializing one bulk send.  Fairness is
/// preserved: every fused member is charged against its tenant's stride
/// pass exactly as a solo dispatch would be (Scheduler::take).
///
/// Rejections are synchronous and explicit — SubmitResult carries
/// kQueueFull / kRateLimited / kShutdown with no future attached — so an
/// overloaded service applies backpressure instead of growing a queue
/// without bound.
///
/// Telemetry: per-tenant admission/rejection/completion counters, a
/// queue-depth gauge maintained at every admit/dispatch, queue-wait and
/// end-to-end latency histograms (all labeled `tenant="<escaped name>"`
/// through obs::label_pair so arbitrary tenant names render as valid
/// Prometheus), plus an `svc.request` span around every execution.
///
/// Shutdown is graceful by default: shutdown(true) stops admission,
/// drains every queued request through the pools, then joins the pool
/// threads; shutdown(false) stops after the in-flight runs and fails the
/// still-queued requests with kShutdown.  The destructor drains.
///
/// Observability of the daemon itself: every successful run is profiled
/// (obs::analyze — causal DAG, critical path, component decomposition,
/// model residual) into a bounded obs::FlightRecorder, the resulting
/// RunProfile rides on the Response, and an opt-in HTTP introspection
/// server (Options::introspect_port, svc/introspect.hpp) serves /metrics,
/// /healthz, /statusz and /tracez from the live service.

namespace logpc::svc {

class IntrospectServer;

// OpKind, Status, Request, Response and SubmitResult live in
// svc/request.hpp (shared with the fusion helpers); this header
// re-exports them through its include.

class CollectiveService {
 public:
  /// Service configuration, validated at construction: the constructor
  /// throws std::invalid_argument for pools outside [1, 64], a fusion
  /// batch limit below 2 while fusion is on, a segmentation policy that
  /// can never split (segment_bytes == 0 or max_segments < 2 with a
  /// non-zero threshold), a zero flight-recorder capacity, a negative or
  /// NaN residual threshold, or a port above 65535 — never clamps
  /// silently.
  struct Options {
    /// Persistent engine pools.  Each pool is one exec::Engine (P worker
    /// threads + warm run context) plus one dispatcher thread; requests
    /// across pools run concurrently, requests on one pool serialize.
    int pools = 2;
    /// Spawn every pool's worker threads before admission opens, so even
    /// the first request dispatches warm.
    bool prewarm = true;
    /// Start with dispatch paused (admission still open) — operational
    /// lever for staged bring-up; also what the policy tests use to build
    /// a backlog deterministically.
    bool start_paused = false;
    /// Engine knobs shared by every pool.
    exec::Engine::Options engine;
    /// Profile every successful run (obs::analyze) into the flight
    /// recorder and onto Response::profile.  On by default: the analyzer
    /// walks the event log once, and bench_profile guards its warm-path
    /// cost at < 5%.
    bool profile = true;
    /// Flight-recorder knobs (capacity of retained profiles, |residual|
    /// anomaly threshold).
    std::size_t flight_recorder_capacity = 64;
    double residual_threshold = 0.5;
    /// HTTP introspection endpoint: port to serve /metrics, /healthz,
    /// /statusz and /tracez on.  Negative = disabled (the default);
    /// 0 = bind an ephemeral port (read it back via introspect_port()).
    int introspect_port = -1;
    /// Introspection bind address.  Loopback by default — the endpoint
    /// exposes operational internals, so reaching it from off-host is an
    /// explicit decision.
    std::string introspect_bind = "127.0.0.1";

    // --- high-throughput path (svc/fusion.hpp) -------------------------
    /// Fusion window: after picking a fusible request, the pool coalesces
    /// every queued same-shape request into the dispatch and keeps the
    /// batch open up to this long for more to arrive (cut short when the
    /// queues drain with the batch already amortized, when the batch
    /// fills, or at shutdown).  0 disables fusion entirely.
    std::uint64_t fusion_window_us = 200;
    /// Per-class opt-out.  Interactive defaults to unfused — the window
    /// is pure added latency when traffic is sparse, and the class exists
    /// for latency; batch and best-effort default to fused.
    bool fuse_qos[kQoSClasses] = {false, true, true};
    /// Requests per fused batch, at most.
    std::size_t max_fusion_batch = 32;
    /// Broadcast payloads at/above this split into the Section 3 k-item
    /// segmented pipeline; 0 disables segmentation.
    std::size_t segment_threshold = 256 * 1024;
    /// Target bytes per segment: k = ceil(total / segment_bytes), clamped
    /// to [2, max_segments].
    std::size_t segment_bytes = 64 * 1024;
    int max_segments = 16;
    /// Deterministic fault injection applied to every run (an Injector is
    /// built from this spec per dispatch).  Test hook: a rank death inside
    /// a fused batch must fail every member consistently, and that can
    /// only be provoked from inside the service's own dispatch path.
    std::optional<fault::FaultSpec> fault;
  };

  /// \param planner plan-lookup service; nullptr uses the process-wide
  ///        runtime::Planner::shared_default() (shared plan cache).
  explicit CollectiveService(Params params, Options options,
                             std::shared_ptr<runtime::Planner> planner = nullptr);
  explicit CollectiveService(Params params)
      : CollectiveService(params, Options{}) {}
  ~CollectiveService();  ///< shutdown(true)
  CollectiveService(const CollectiveService&) = delete;
  CollectiveService& operator=(const CollectiveService&) = delete;

  /// Registers a tenant.  Thread-safe; may be called while serving.
  TenantId register_tenant(TenantConfig config);

  /// Admission: synchronous verdict plus (on kOk) a future for the
  /// eventual Response.  Never blocks on execution.  Throws
  /// std::invalid_argument for an unknown tenant id.
  SubmitResult submit(TenantId tenant, Request request);

  /// Dispatch gate: pause() holds queued work (admission stays open),
  /// resume() releases it.  Draining shutdown overrides a pause.
  void pause();
  void resume();

  /// Stops admission, then either drains every queued request through the
  /// pools (drain = true) or fails still-queued requests with kShutdown
  /// (drain = false).  Joins the pool threads; idempotent; thread-safe.
  void shutdown(bool drain = true);

  /// Point-in-time per-tenant accounting (test/ops introspection; the
  /// same numbers are exported as logpc_svc_* metrics).
  struct TenantCounters {
    std::uint64_t admitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected_queue_full = 0;
    std::uint64_t rejected_rate_limited = 0;
    /// Completions that rode a fused batch (>= 2 requests coalesced).
    std::uint64_t fused = 0;
    std::size_t queue_depth = 0;
  };
  [[nodiscard]] TenantCounters tenant_counters(TenantId tenant) const;

  /// Point-in-time snapshot of everything /statusz renders: service-level
  /// state, per-tenant config + counters + per-QoS queue depths, and the
  /// flight-recorder summary.
  struct TenantStatus {
    TenantId id = -1;
    std::string name;  ///< uniquified metric label value
    std::uint32_t weight = 1;
    std::size_t queue_capacity = 0;
    double rate_per_sec = 0;
    std::size_t depth_by_qos[kQoSClasses] = {};
    TenantCounters counters;
  };
  struct ServiceStatus {
    bool accepting = false;
    bool paused = false;
    int pools = 0;
    std::size_t queued = 0;
    /// Requests admitted and not yet completed (queued + dispatched).
    std::size_t inflight = 0;
    /// High-throughput path totals: members of >= 2-request fused batches,
    /// the batches themselves, and runs that took the segmented pipeline.
    std::uint64_t fused_requests = 0;
    std::uint64_t fused_batches = 0;
    std::uint64_t segmented_runs = 0;
    Params params;
    std::vector<TenantStatus> tenants;
    obs::FlightRecorder::Summary recorder;
  };
  [[nodiscard]] ServiceStatus status() const;

  /// The run-profile flight recorder (always present; empty when
  /// Options::profile is off).
  [[nodiscard]] const obs::FlightRecorder& flight_recorder() const {
    return recorder_;
  }

  /// The bound introspection port, or -1 when introspection is disabled.
  /// With Options::introspect_port = 0 this is the kernel-assigned
  /// ephemeral port.
  [[nodiscard]] int introspect_port() const;

  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] int pools() const { return static_cast<int>(pools_.size()); }
  [[nodiscard]] bool accepting() const;
  /// Requests currently queued (all tenants).
  [[nodiscard]] std::size_t queued() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    TenantId tenant = -1;
    Request req;
    std::promise<Response> promise;
    Clock::time_point submitted;
    std::uint64_t seq = 0;  ///< dispatch order, assigned at pick
    /// Fusion identity, computed once at submit (nullopt = must run solo).
    std::optional<FusionKey> fkey;
  };

  struct Pool {
    std::unique_ptr<exec::Engine> engine;
    std::thread thread;
  };

  /// Registry-owned instruments + plain mirrors for tenant_counters().
  struct TenantMetrics {
    std::string name;   ///< uniquified plain label value (statusz)
    std::string label;  ///< pre-escaped `tenant="..."` body
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> rejected_queue_full{0};
    std::atomic<std::uint64_t> rejected_rate_limited{0};
    std::atomic<std::uint64_t> fused{0};
    obs::Counter* admitted_total = nullptr;
    obs::Counter* rejected_queue_full_total = nullptr;
    obs::Counter* rejected_rate_limited_total = nullptr;
    obs::Counter* completed_ok_total = nullptr;
    obs::Counter* completed_error_total = nullptr;
    obs::Counter* fused_total = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Histogram* queue_wait = nullptr;
    obs::Histogram* e2e_latency = nullptr;
  };

  void pool_loop(int pool_index);
  /// Runs one dispatch — the whole batch through one engine run — and
  /// returns one Response per member, batch order.
  std::vector<Response> execute_batch(
      const std::vector<std::unique_ptr<Pending>>& batch, exec::Engine& engine,
      int pool_index);
  /// Moves every queued request matching `key` into `batch` (admission
  /// order, up to max_fusion_batch), charging each claim through
  /// Scheduler::take.  Call under mu_.
  void claim_siblings(const FusionKey& key,
                      std::vector<std::unique_ptr<Pending>>& batch);
  TenantMetrics& metrics_at(TenantId tenant);  ///< call under mu_; throws
  /// Compiled program for (op, root, segments), cached for the service
  /// lifetime — the machine is fixed, so every same-shape request reuses
  /// one lowering (plans themselves come from the shared plan cache).
  /// segments > 1 resolves the Section 3 k-item pipeline program.
  std::shared_ptr<const exec::Program> program_for(OpKind op, ProcId root,
                                                  int segments);
  [[nodiscard]] double now_sec() const;

  Params params_;
  Options opts_;
  api::Communicator comm_;
  const Clock::time_point epoch_ = Clock::now();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Scheduler sched_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Pending>> queued_reqs_;
  std::uint64_t next_handle_ = 1;
  std::uint64_t dispatch_seq_ = 0;
  bool paused_ = false;
  bool stopping_ = false;
  bool drain_on_stop_ = true;
  std::vector<std::unique_ptr<TenantMetrics>> tenant_metrics_;
  /// Metric label values handed out so far: a tenant re-using a name gets
  /// a "#<id>" suffix instead of silently sharing the first tenant's
  /// series.
  std::set<std::string> used_labels_;

  std::mutex prog_mu_;
  std::map<std::tuple<int, ProcId, int>, std::shared_ptr<const exec::Program>>
      programs_;

  /// Service-wide throughput accounting (plain atomics mirroring the
  /// logpc_svc_inflight / fused / batch-size instruments for status()).
  std::atomic<std::int64_t> inflight_{0};
  std::atomic<std::uint64_t> fused_requests_{0};
  std::atomic<std::uint64_t> fused_batches_{0};
  std::atomic<std::uint64_t> segmented_runs_{0};
  obs::Gauge* inflight_gauge_ = nullptr;
  obs::Histogram* batch_size_hist_ = nullptr;

  std::mutex shutdown_mu_;  ///< serializes shutdown(); makes it idempotent
  bool shut_down_ = false;

  std::vector<Pool> pools_;

  obs::FlightRecorder recorder_;
  std::unique_ptr<IntrospectServer> introspect_;
};

}  // namespace logpc::svc
