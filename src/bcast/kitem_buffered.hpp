#pragma once

#include "bcast/kitem_bounds.hpp"
#include "sched/schedule.hpp"

/// \file kitem_buffered.hpp
/// Section 3.5 / Theorem 3.8: k-item broadcast in the *modified* model,
/// where arrivals wait in a receive buffer and the processor chooses which
/// buffered item to receive each step.  A single-sending schedule then
/// meets the single-sending lower bound B(P-1) + L + k - 1 exactly, and a
/// scheme exists needing buffer capacity only 2.
///
/// Construction: the source injects item i at step i toward a root chosen
/// round-robin; every processor forwards greedily; receivers drain their
/// buffer oldest-item-first, deferring an inactive arrival whenever an
/// active one lands in the same step (the paper's delayed items, the boxed
/// entries of Figure 5).  Tests verify the bound and the buffer-2 property
/// on swept instances.

namespace logpc::bcast {

struct BufferedKItemResult {
  Schedule schedule;     ///< buffered sends: recv_start set explicitly
  KItemBounds bounds;
  Time completion = 0;
  int max_buffer_depth = 0;  ///< worst per-processor buffer occupancy
};

/// Builds the buffered-model schedule for items 0..k-1 from source 0 on P
/// postal processors with latency L.  Validate with
/// CheckOptions{.buffered = true, .buffer_limit = ...}.
[[nodiscard]] BufferedKItemResult kitem_buffered(int P, Time L, int k);

}  // namespace logpc::bcast
