# Empty dependencies file for test_all_to_all.
# This may be replaced when dependencies are built.
