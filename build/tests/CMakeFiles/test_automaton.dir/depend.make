# Empty dependencies file for test_automaton.
# This may be replaced when dependencies are built.
