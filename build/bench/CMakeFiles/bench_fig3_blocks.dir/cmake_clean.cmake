file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_blocks.dir/bench_fig3_blocks.cpp.o"
  "CMakeFiles/bench_fig3_blocks.dir/bench_fig3_blocks.cpp.o.d"
  "bench_fig3_blocks"
  "bench_fig3_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
