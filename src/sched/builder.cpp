#include "sched/builder.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace logpc {

namespace {

// Inserts t into a sorted vector.
void insert_sorted(std::vector<Time>& v, Time t) {
  v.insert(std::upper_bound(v.begin(), v.end(), t), t);
}

// True iff half-open intervals [a, a+len) and [b, b+len2) overlap.
bool overlaps(Time a, Time alen, Time b, Time blen) {
  return a < b + blen && b < a + alen;
}

}  // namespace

ScheduleBuilder::ScheduleBuilder(Params params, int num_items)
    : sched_(params, num_items) {
  params.require_valid();
  if (num_items < 1) throw std::invalid_argument("builder: num_items >= 1");
  const auto P = static_cast<std::size_t>(params.P);
  send_starts_.resize(P);
  recv_starts_.resize(P);
  avail_.assign(P, std::vector<Time>(static_cast<std::size_t>(num_items),
                                     kNever));
}

void ScheduleBuilder::check_proc(ProcId p, const char* what) const {
  if (p < 0 || p >= params().P) {
    throw std::logic_error(std::string("builder: bad processor for ") + what +
                           ": " + std::to_string(p));
  }
}

void ScheduleBuilder::check_item(ItemId i) const {
  if (i < 0 || i >= sched_.num_items()) {
    throw std::logic_error("builder: bad item " + std::to_string(i));
  }
}

void ScheduleBuilder::place(ItemId item, ProcId proc, Time time) {
  check_proc(proc, "place");
  check_item(item);
  sched_.add_initial(item, proc, time);
  Time& a = avail_[static_cast<std::size_t>(proc)][static_cast<std::size_t>(item)];
  a = std::min(a, time);
}

Time ScheduleBuilder::available(ProcId proc, ItemId item) const {
  return avail_[static_cast<std::size_t>(proc)][static_cast<std::size_t>(item)];
}

bool ScheduleBuilder::can_recv_at(ProcId proc, Time recv_start) const {
  const auto& recvs = recv_starts_[static_cast<std::size_t>(proc)];
  const Time g = params().g;
  const Time o = params().o;
  for (const Time r : recvs) {
    if (recv_start > r - g && recv_start < r + g) return false;
  }
  if (o > 0) {
    for (const Time s : send_starts_[static_cast<std::size_t>(proc)]) {
      if (overlaps(s, o, recv_start, o)) return false;
    }
  }
  return true;
}

bool ScheduleBuilder::send_slot_free(ProcId proc, Time start) const {
  const Time g = params().g;
  const Time o = params().o;
  for (const Time s : send_starts_[static_cast<std::size_t>(proc)]) {
    if (start > s - g && start < s + g) return false;
  }
  if (o > 0) {
    for (const Time r : recv_starts_[static_cast<std::size_t>(proc)]) {
      if (overlaps(start, o, r, o)) return false;
    }
  }
  return true;
}

Time ScheduleBuilder::earliest_send_start(ProcId from, Time not_before) const {
  check_proc(from, "earliest_send_start");
  Time t = not_before;
  // Conflicts only push the start later; each committed event can bump t at
  // most once per pass, so iterate to a fixpoint.
  for (;;) {
    bool moved = false;
    const Time g = params().g;
    const Time o = params().o;
    for (const Time s : send_starts_[static_cast<std::size_t>(from)]) {
      if (t > s - g && t < s + g) {
        t = s + g;
        moved = true;
      }
    }
    if (o > 0) {
      for (const Time r : recv_starts_[static_cast<std::size_t>(from)]) {
        if (overlaps(t, o, r, o)) {
          t = r + o;
          moved = true;
        }
      }
    }
    if (!moved) return t;
  }
}

Time ScheduleBuilder::send_at(Time start, ProcId from, ProcId to, ItemId item) {
  check_proc(from, "send_at(from)");
  check_proc(to, "send_at(to)");
  check_item(item);
  if (from == to) throw std::logic_error("builder: send to self");
  const Time have = available(from, item);
  if (have == kNever || have > start) {
    throw std::logic_error("builder: P" + std::to_string(from) +
                           " does not hold item " + std::to_string(item) +
                           " at t=" + std::to_string(start));
  }
  if (!send_slot_free(from, start)) {
    throw std::logic_error("builder: send slot conflict at P" +
                           std::to_string(from) + " t=" +
                           std::to_string(start));
  }
  const Time recv = start + params().o + params().L;
  if (!can_recv_at(to, recv)) {
    throw std::logic_error("builder: receive conflict at P" +
                           std::to_string(to) + " t=" + std::to_string(recv));
  }
  sched_.add_send(SendOp{start, from, to, item, kNever});
  insert_sorted(send_starts_[static_cast<std::size_t>(from)], start);
  insert_sorted(recv_starts_[static_cast<std::size_t>(to)], recv);
  const Time at = recv + params().o;
  Time& a = avail_[static_cast<std::size_t>(to)][static_cast<std::size_t>(item)];
  a = std::min(a, at);
  return at;
}

Time ScheduleBuilder::send_earliest(ProcId from, ProcId to, ItemId item,
                                    Time not_before) {
  check_proc(from, "send_earliest(from)");
  check_item(item);
  const Time have = available(from, item);
  if (have == kNever) {
    throw std::logic_error("builder: P" + std::to_string(from) +
                           " never holds item " + std::to_string(item));
  }
  Time t = earliest_send_start(from, std::max(not_before, have));
  // The sender slot is legal at t; advance until the receiver can take the
  // arrival too.  Advancing re-checks the sender.
  while (!can_recv_at(to, t + params().o + params().L)) {
    t = earliest_send_start(from, t + 1);
  }
  return send_at(t, from, to, item);
}

int ScheduleBuilder::sends_from(ProcId proc) const {
  check_proc(proc, "sends_from");
  return static_cast<int>(send_starts_[static_cast<std::size_t>(proc)].size());
}

Schedule ScheduleBuilder::take() {
  sched_.sort();
  return std::move(sched_);
}

}  // namespace logpc
