#pragma once

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

/// \file bench_util.hpp
/// Shared scaffolding for the reproduction benches.  Each bench binary
/// first prints the paper-vs-measured tables for its figure/claim, then
/// runs its google-benchmark microbenchmarks.

namespace logpc::bench {

/// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  template <typename... Ts>
  void row(const Ts&... cells) {
    std::vector<std::string> r;
    (r.push_back(to_cell(cells)), ...);
    rows_.push_back(std::move(r));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << "| " << std::setw(static_cast<int>(width[c]))
           << (c < cells.size() ? cells[c] : "") << " ";
      }
      os << "|\n";
    };
    line(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << "|" << std::string(width[c] + 2, '-');
    }
    os << "|\n";
    for (const auto& r : rows_) line(r);
  }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      std::ostringstream os;
      os << v;
      return os.str();
    }
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void section(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// "yes"/"NO" marker for reproduction columns.
inline std::string ok(bool v) { return v ? "yes" : "NO"; }

}  // namespace logpc::bench

/// Standard bench main: print the reproduction report, then run the
/// microbenchmarks.  Define `void report();` before including via the
/// LOGPC_BENCH_MAIN macro.
#define LOGPC_BENCH_MAIN(report_fn)                          \
  int main(int argc, char** argv) {                          \
    report_fn();                                             \
    ::benchmark::Initialize(&argc, argv);                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                              \
    ::benchmark::RunSpecifiedBenchmarks();                   \
    ::benchmark::Shutdown();                                 \
    return 0;                                                \
  }
