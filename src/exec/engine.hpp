#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "exec/mailbox.hpp"
#include "exec/program.hpp"
#include "exec/thread_pool.hpp"

/// \file engine.hpp
/// The shared-memory execution engine: runs a compiled Program on a pool
/// of OS threads — one logical LogP processor per worker — moving real
/// payload bytes through one bounded lock-free mailbox per directed link.
///
/// Execution is as-fast-as-possible: planned cycles order each stream but
/// never pace it.  The model's constraints survive as *structure* — the
/// per-processor instruction order, the per-link FIFO, and the mailbox
/// bound of ceil(L/g) messages (the capacity constraint) — so a run is the
/// plan's dependency graph executed raw, and the returned timestamps are
/// what exec::measure() fits effective (L, o, g) from.
///
/// Every run records per-processor send/recv timestamps and the observed
/// delivery sequence (cross-checkable with validate::check_delivery_order),
/// increments the logpc_exec_* metrics, and wraps itself plus each worker
/// in obs spans, so executions land in the Chrome-trace exporter next to
/// sim::Trace timelines.

namespace logpc::exec {

using Bytes = std::vector<std::byte>;

/// Left-fold step for kFold/kSum runs: acc <- op(acc, rhs).  Must be
/// associative; need not be commutative — the engine folds in exactly the
/// plan's combination order.  The very first contribution is assigned, not
/// folded (the engine handles that; `op` never sees an empty accumulator).
using CombineFn =
    std::function<void(Bytes& acc, std::span<const std::byte> rhs)>;

/// One timed operation on one processor.  Timestamps are nanoseconds on
/// the steady clock, relative to the run's start.
struct ExecEvent {
  enum class Kind : std::uint8_t { kSend, kRecv };
  Kind kind = Kind::kSend;
  ProcId peer = kNoProc;
  ItemId item = 0;
  std::uint64_t start_ns = 0;  ///< op begin (includes any blocking wait)
  std::uint64_t xfer_ns = 0;   ///< send: push accepted; recv: payload arrived
  std::uint64_t end_ns = 0;    ///< payload copied / folded, op complete
  Time planned = 0;            ///< planned cycle of this event
};

/// Everything a run produced: result buffers, measured timestamps, the
/// observed delivery order, and the run-level tallies.
struct ExecReport {
  Params params;
  Mode mode = Mode::kMove;
  std::string label;
  Time predicted_makespan = 0;     ///< plan cycles
  std::uint64_t wall_ns = 0;       ///< measured makespan, dispatch to barrier
  std::size_t messages = 0;
  std::size_t payload_bytes = 0;   ///< bytes moved through mailboxes
  std::size_t mailbox_capacity = 0;
  std::size_t max_mailbox_occupancy = 0;  ///< high-water mark over all links
  std::vector<std::vector<ExecEvent>> events;  ///< [proc], in stream order
  std::vector<std::vector<validate::DeliveryRecord>> deliveries;  ///< [proc]
  std::vector<std::vector<Bytes>> items;  ///< kMove results: [proc][item]
  std::vector<Bytes> folded;  ///< kFold/kSum accumulators: [proc]

  /// kMove: processor p's copy of `item`.
  [[nodiscard]] const Bytes& item_at(ProcId p, ItemId item) const {
    return items[static_cast<std::size_t>(p)][static_cast<std::size_t>(item)];
  }
  /// kFold/kSum: processor p's final accumulator (the collective's result
  /// when p is the root).
  [[nodiscard]] const Bytes& folded_at(ProcId p) const {
    return folded[static_cast<std::size_t>(p)];
  }
};

class Engine {
 public:
  struct Options {
    /// Per-link mailbox bound; 0 means the model's capacity ceil(L/g).
    std::size_t mailbox_capacity = 0;
    /// Abort a run whose blocking wait exceeds this (a plan or engine bug
    /// must fail loudly, not hang the pool).
    std::uint64_t timeout_ms = 20000;
  };

  Engine() = default;
  explicit Engine(Options options) : opts_(options) {}

  /// kMove: `item_values[i]` is item i's payload (sizes may differ per
  /// item).  Every processor named in an initial placement starts with its
  /// items seeded; on return every processor's slots hold what the plan
  /// delivered.
  ExecReport run(const Program& program, const std::vector<Bytes>& item_values);

  /// kFold: `values[p]` is processor p's initial value; receives fold with
  /// `op` in arrival order.  The root's accumulator is the result.
  ExecReport run(const Program& program, const std::vector<Bytes>& values,
                 const CombineFn& op);

  /// kSum: `operands[i]` are the local operands of plan.procs[i] (counts
  /// must match sum::operand_layout; throws otherwise), folded with `op` in
  /// the plan's combination order.
  ExecReport run(const Program& program,
                 const std::vector<std::vector<Bytes>>& operands,
                 const CombineFn& op);

  /// The process-wide engine api::Communicator's run_* entry points use by
  /// default.  Thread-safe: concurrent runs serialize on the pool.
  static Engine& shared();

  [[nodiscard]] ThreadPool& pool() { return pool_; }

 private:
  ExecReport run_impl(const Program& program,
                      const std::vector<Bytes>* item_values,
                      const std::vector<Bytes>* fold_values,
                      const std::vector<std::vector<Bytes>>* operands,
                      const CombineFn* op);

  Options opts_;
  ThreadPool pool_;
};

}  // namespace logpc::exec
