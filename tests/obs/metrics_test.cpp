#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/prometheus.hpp"

namespace logpc::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAddBothWays) {
  Gauge g;
  g.set(10.5);
  EXPECT_DOUBLE_EQ(g.value(), 10.5);
  g.add(-3.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(Histogram, BucketsByUpperBoundInclusive) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (inclusive)
  h.observe(5.0);    // <= 10
  h.observe(1000.0);  // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({10.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, ConcurrentObservationsAllLand) {
  Histogram h(default_latency_buckets_ns());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(static_cast<double>(i));
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t total = 0;
  for (const std::uint64_t c : h.bucket_counts()) total += c;
  EXPECT_EQ(total, h.count());
}

TEST(Registry, SameIdentityReturnsSameMetric) {
  MetricsRegistry reg;
  Counter& a = reg.counter("requests", "help");
  Counter& b = reg.counter("requests");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(Registry, LabelsSeparateMetrics) {
  MetricsRegistry reg;
  Counter& a = reg.counter("reqs", "", "problem=\"bcast\"");
  Counter& b = reg.counter("reqs", "", "problem=\"kitem\"");
  EXPECT_NE(&a, &b);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Registry, KindConflictThrows) {
  MetricsRegistry reg;
  (void)reg.counter("m");
  EXPECT_THROW((void)reg.gauge("m"), std::logic_error);
  EXPECT_THROW((void)reg.histogram("m", {1.0}), std::logic_error);
}

TEST(Registry, CallbackGaugeEvaluatedAtSnapshot) {
  MetricsRegistry reg;
  double level = 1.0;
  reg.register_callback("level", "", [&level] { return level; });
  level = 7.0;
  const auto snaps = reg.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].kind, MetricSnapshot::Kind::kGauge);
  EXPECT_DOUBLE_EQ(snaps[0].value, 7.0);
}

TEST(Registry, UnregisterDropsMetric) {
  MetricsRegistry reg;
  reg.register_callback("tmp", "", [] { return 0.0; }, "x=\"1\"");
  EXPECT_TRUE(reg.unregister("tmp", "x=\"1\""));
  EXPECT_FALSE(reg.unregister("tmp", "x=\"1\""));
  EXPECT_EQ(reg.size(), 0u);
}

TEST(Registry, SnapshotSortedByNameThenLabels) {
  MetricsRegistry reg;
  (void)reg.counter("b");
  (void)reg.counter("a", "", "l=\"2\"");
  (void)reg.counter("a", "", "l=\"1\"");
  const auto snaps = reg.snapshot();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "a");
  EXPECT_EQ(snaps[0].labels, "l=\"1\"");
  EXPECT_EQ(snaps[1].labels, "l=\"2\"");
  EXPECT_EQ(snaps[2].name, "b");
}

TEST(EnabledFlag, TogglesProcessWide) {
  EXPECT_TRUE(enabled());
  set_enabled(false);
  EXPECT_FALSE(enabled());
  set_enabled(true);
  EXPECT_TRUE(enabled());
}

TEST(Prometheus, CounterAndGaugeExposition) {
  MetricsRegistry reg;
  reg.counter("logpc_requests_total", "total requests").inc(3);
  reg.gauge("logpc_depth", "queue depth", "shard=\"0\"").set(2.5);
  const std::string text = prometheus_text(reg);
  EXPECT_NE(text.find("# HELP logpc_requests_total total requests\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE logpc_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("logpc_requests_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE logpc_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("logpc_depth{shard=\"0\"} 2.5\n"), std::string::npos);
}

TEST(Prometheus, HistogramCumulativeBucketsWithInf) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {1.0, 10.0}, "latency");
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  const std::string text = prometheus_text(reg);
  EXPECT_NE(text.find("# TYPE lat histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"10\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 55.5\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 3\n"), std::string::npos);
}

TEST(ExponentialBuckets, GeometricLadder) {
  const std::vector<double> edges = exponential_buckets(1.0, 10.0, 4);
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_DOUBLE_EQ(edges[0], 1.0);
  EXPECT_DOUBLE_EQ(edges[1], 10.0);
  EXPECT_DOUBLE_EQ(edges[2], 100.0);
  EXPECT_DOUBLE_EQ(edges[3], 1000.0);
}

TEST(ExponentialBuckets, EdgesAreStrictlyIncreasingAndHistogramValid) {
  const std::vector<double> edges = exponential_buckets(1e3, 2.0, 25);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LT(edges[i - 1], edges[i]) << "edge " << i;
  }
  // A Histogram accepts the ladder (sorted, finite) and buckets land right.
  Histogram h(edges);
  h.observe(1.5e3);  // between edge 0 (1e3) and edge 1 (2e3)
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), edges.size() + 1);
  EXPECT_EQ(counts[1], 1u);
}

TEST(ExponentialBuckets, RejectsDegenerateParameters) {
  EXPECT_THROW(exponential_buckets(0.0, 2.0, 4), std::invalid_argument);
  EXPECT_THROW(exponential_buckets(-1.0, 2.0, 4), std::invalid_argument);
  EXPECT_THROW(exponential_buckets(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(exponential_buckets(1.0, 0.5, 4), std::invalid_argument);
  EXPECT_THROW(exponential_buckets(1.0, 2.0, 0), std::invalid_argument);
}

TEST(ExponentialBuckets, RequestLadderSpansMicrosecondsToSeconds) {
  const std::vector<double>& edges = default_request_buckets_ns();
  ASSERT_EQ(edges.size(), 25u);
  EXPECT_DOUBLE_EQ(edges.front(), 1e3);  // 1us
  EXPECT_GT(edges.back(), 1e10);         // > 10s: overload waits resolve
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_DOUBLE_EQ(edges[i], 2.0 * edges[i - 1]);
  }
}

TEST(Prometheus, LabeledHistogramMergesFamilyHeader) {
  MetricsRegistry reg;
  reg.histogram("lat", {1.0}, "latency", "problem=\"a\"").observe(0.5);
  reg.histogram("lat", {1.0}, "latency", "problem=\"b\"").observe(2.0);
  const std::string text = prometheus_text(reg);
  // One TYPE header for the family, series for both label sets.
  EXPECT_EQ(text.find("# TYPE lat histogram"),
            text.rfind("# TYPE lat histogram"));
  EXPECT_NE(text.find("lat_bucket{problem=\"a\",le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_bucket{problem=\"b\",le=\"+Inf\"} 1\n"),
            std::string::npos);
}

}  // namespace
}  // namespace logpc::obs
