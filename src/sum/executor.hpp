#pragma once

#include <functional>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "sum/summation_tree.hpp"

/// \file executor.hpp
/// Concrete execution of a summation plan on real operand values.
///
/// The combine operator must be associative; it need not be commutative -
/// the plan induces a definite leaf order (combination_order) and the
/// executor folds operands exactly in that order, which realizes the
/// paper's footnote that the commutative-optimal algorithm handles
/// non-commutative '+' after renumbering the operands.

namespace logpc::sum {

/// Chunked layout of one processor's local operands: chunk j is summed
/// between reception j-1 and reception j (chunk 0 before the first
/// reception, the last chunk after the final one).
struct ProcLayout {
  ProcId proc = kNoProc;
  std::vector<std::size_t> chunk_sizes;  ///< recv_count + 1 entries

  [[nodiscard]] std::size_t total() const {
    return std::accumulate(chunk_sizes.begin(), chunk_sizes.end(),
                           std::size_t{0});
  }
};

/// Per-processor operand layout implied by the plan's timing: chunk sizes
/// follow from the gaps between receptions (each reception costs o+1
/// cycles; every other pre-send cycle is one input addition).
[[nodiscard]] std::vector<ProcLayout> operand_layout(const SummationPlan& plan);

/// The order in which input operands enter the final result, as
/// (processor, local index) pairs.  Folding operands by this order with any
/// associative op reproduces execute_summation's result.
[[nodiscard]] std::vector<std::pair<ProcId, std::size_t>> combination_order(
    const SummationPlan& plan);

/// Executes the plan.  operands[i] holds the local operands of
/// plan.procs[i].proc, sized to match operand_layout (throws otherwise).
/// Returns the root's final value.
template <typename V>
V execute_summation(const SummationPlan& plan,
                    const std::vector<std::vector<V>>& operands,
                    const std::function<V(const V&, const V&)>& op) {
  const auto layout = operand_layout(plan);
  if (operands.size() != plan.procs.size()) {
    throw std::invalid_argument("execute_summation: wrong processor count");
  }
  for (std::size_t i = 0; i < layout.size(); ++i) {
    if (operands[i].size() != layout[i].total()) {
      throw std::invalid_argument(
          "execute_summation: operand count mismatch at plan index " +
          std::to_string(i));
    }
  }
  // Children always send strictly before their parents; process in
  // send-time order so child values are ready when the parent folds them.
  std::vector<std::size_t> order(plan.procs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return plan.procs[a].send_time < plan.procs[b].send_time;
  });
  std::vector<V> value(plan.procs.size());
  std::vector<bool> done(plan.procs.size(), false);
  // plan index by processor id for resolving recv_from.
  std::vector<std::size_t> index_of(static_cast<std::size_t>(plan.params.P),
                                    SIZE_MAX);
  for (std::size_t i = 0; i < plan.procs.size(); ++i) {
    index_of[static_cast<std::size_t>(plan.procs[i].proc)] = i;
  }
  for (const std::size_t i : order) {
    const auto& pp = plan.procs[i];
    const auto& chunks = layout[i].chunk_sizes;
    const auto& ops = operands[i];
    std::size_t pos = 0;
    bool have = false;
    V acc{};
    auto fold_chunk = [&](std::size_t count) {
      for (std::size_t c = 0; c < count; ++c) {
        acc = have ? op(acc, ops[pos]) : ops[pos];
        have = true;
        ++pos;
      }
    };
    fold_chunk(chunks[0]);
    for (std::size_t j = 0; j < pp.recv_from.size(); ++j) {
      const std::size_t child = index_of[static_cast<std::size_t>(
          pp.recv_from[j])];
      if (child == SIZE_MAX || !done[child]) {
        throw std::logic_error("execute_summation: child value not ready");
      }
      acc = have ? op(acc, value[child]) : value[child];
      have = true;
      fold_chunk(chunks[j + 1]);
    }
    value[i] = acc;
    done[i] = true;
  }
  return value[index_of[static_cast<std::size_t>(plan.root)]];
}

/// Convenience: sums the integers 0..n-1 laid out canonically; returns the
/// root value.  Used by tests and the quickstart example.
[[nodiscard]] long long execute_iota_sum(const SummationPlan& plan);

}  // namespace logpc::sum
