#include "sum/executor.hpp"

#include <algorithm>

namespace logpc::sum {

std::vector<ProcLayout> operand_layout(const SummationPlan& plan) {
  const Time o = plan.params.o;
  std::vector<ProcLayout> layout;
  layout.reserve(plan.procs.size());
  for (const auto& pp : plan.procs) {
    ProcLayout pl;
    pl.proc = pp.proc;
    const auto k = pp.recv_times.size();
    if (k == 0) {
      // S cycles of additions: S + 1 operands.
      pl.chunk_sizes.push_back(static_cast<std::size_t>(pp.send_time) + 1);
    } else {
      // Before the first reception: R_0 addition cycles -> R_0 + 1 operands.
      pl.chunk_sizes.push_back(
          static_cast<std::size_t>(pp.recv_times[0]) + 1);
      // Between receptions: the cycles from the end of reception j-1's
      // o+1 window to the start of reception j, each one addition folding
      // one further operand (no +1: the accumulator already exists).
      for (std::size_t j = 1; j < k; ++j) {
        pl.chunk_sizes.push_back(static_cast<std::size_t>(
            pp.recv_times[j] - (pp.recv_times[j - 1] + o + 1)));
      }
      // After the last reception, up to the send.
      pl.chunk_sizes.push_back(static_cast<std::size_t>(
          pp.send_time - (pp.recv_times[k - 1] + o + 1)));
    }
    layout.push_back(std::move(pl));
  }
  return layout;
}

std::vector<std::pair<ProcId, std::size_t>> combination_order(
    const SummationPlan& plan) {
  using Entry = std::pair<ProcId, std::size_t>;
  const auto layout = operand_layout(plan);
  std::vector<std::size_t> index_of(static_cast<std::size_t>(plan.params.P),
                                    SIZE_MAX);
  for (std::size_t i = 0; i < plan.procs.size(); ++i) {
    index_of[static_cast<std::size_t>(plan.procs[i].proc)] = i;
  }
  std::vector<std::size_t> order(plan.procs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return plan.procs[a].send_time < plan.procs[b].send_time;
  });
  std::vector<std::vector<Entry>> seq(plan.procs.size());
  for (const std::size_t i : order) {
    const auto& pp = plan.procs[i];
    const auto& chunks = layout[i].chunk_sizes;
    std::vector<Entry> s;
    std::size_t pos = 0;
    auto emit_chunk = [&](std::size_t count) {
      for (std::size_t c = 0; c < count; ++c) s.emplace_back(pp.proc, pos++);
    };
    emit_chunk(chunks[0]);
    for (std::size_t j = 0; j < pp.recv_from.size(); ++j) {
      auto& child =
          seq[index_of[static_cast<std::size_t>(pp.recv_from[j])]];
      s.insert(s.end(), child.begin(), child.end());
      emit_chunk(chunks[j + 1]);
    }
    seq[i] = std::move(s);
  }
  return seq[index_of[static_cast<std::size_t>(plan.root)]];
}

long long execute_iota_sum(const SummationPlan& plan) {
  const auto layout = operand_layout(plan);
  std::vector<std::vector<long long>> operands;
  long long next = 0;
  for (const auto& pl : layout) {
    std::vector<long long> vals(pl.total());
    for (auto& v : vals) v = next++;
    operands.push_back(std::move(vals));
  }
  return execute_summation<long long>(
      plan, operands, [](const long long& a, const long long& b) {
        return a + b;
      });
}

}  // namespace logpc::sum
