#include "bcast/three_phase.hpp"

#include <gtest/gtest.h>

#include "bcast/kitem.hpp"
#include "sched/metrics.hpp"
#include "validate/checker.hpp"

namespace logpc::bcast {
namespace {

struct Instance {
  int P;
  Time L;
  int k;
};

class ThreePhaseSweep : public ::testing::TestWithParam<Instance> {};

TEST_P(ThreePhaseSweep, ValidSingleSendingAndComplete) {
  const auto [P, L, k] = GetParam();
  const auto r = kitem_three_phase(P, L, k);
  const auto check = validate::check(r.schedule);
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_TRUE(is_single_sending(r.schedule, 0));
  EXPECT_GE(r.completion, r.bounds.general_lower);
  EXPECT_EQ(r.senders + r.receivers, P - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThreePhaseSweep,
    ::testing::Values(Instance{2, 1, 3}, Instance{5, 1, 4}, Instance{9, 2, 6},
                      Instance{10, 3, 8}, Instance{14, 3, 5},
                      Instance{22, 2, 7}, Instance{17, 4, 4},
                      Instance{33, 1, 6}));

TEST(ThreePhase, SingleItemMatchesSingleSendingOptimum) {
  // With k = 1 there is no pipeline saturation; the three-phase shape
  // meets B(P-1) + L exactly.
  for (const auto& [P, L] : {std::pair{7, 3}, std::pair{13, 2},
                             std::pair{21, 4}}) {
    const auto r = kitem_three_phase(P, L, 1);
    EXPECT_EQ(r.completion, r.bounds.single_sending_lower)
        << "P=" << P << " L=" << L;
  }
}

TEST(ThreePhase, SenderCountIsFOfBMinusL) {
  const auto r = kitem_three_phase(42, 3, 4);
  const Fib fib(3);
  const Time t = fib.B_of_P(41);
  EXPECT_EQ(r.senders, static_cast<int>(fib.f(t - 3)));
}

TEST(ThreePhase, NaiveEndgameLosesToFullTreeConstruction) {
  // The ablation's point: the primary construction (the full t-step tree,
  // whose leaves are the endgame) strictly beats the naive relay endgame
  // on pipelined instances.
  for (const auto& [P, L, k] :
       {std::tuple{10, 3, 8}, std::tuple{22, 2, 12}, std::tuple{26, 5, 8}}) {
    const auto naive = kitem_three_phase(P, L, k);
    const auto full = kitem_broadcast(P, L, k);
    EXPECT_GT(naive.completion, full.completion)
        << "P=" << P << " L=" << L << " k=" << k;
  }
}

TEST(ThreePhase, DegenerateTwoProcessors) {
  const auto r = kitem_three_phase(2, 3, 4);
  EXPECT_EQ(r.receivers, 0);
  EXPECT_EQ(r.completion, r.bounds.single_sending_lower);
}

TEST(ThreePhase, RejectsBadArguments) {
  EXPECT_THROW(kitem_three_phase(1, 3, 2), std::invalid_argument);
  EXPECT_THROW(kitem_three_phase(4, 0, 2), std::invalid_argument);
  EXPECT_THROW(kitem_three_phase(4, 3, 0), std::invalid_argument);
}

}  // namespace
}  // namespace logpc::bcast
