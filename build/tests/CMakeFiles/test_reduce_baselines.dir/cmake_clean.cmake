file(REMOVE_RECURSE
  "CMakeFiles/test_reduce_baselines.dir/baselines/reduce_baselines_test.cpp.o"
  "CMakeFiles/test_reduce_baselines.dir/baselines/reduce_baselines_test.cpp.o.d"
  "test_reduce_baselines"
  "test_reduce_baselines.pdb"
  "test_reduce_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reduce_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
