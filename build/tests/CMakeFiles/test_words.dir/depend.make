# Empty dependencies file for test_words.
# This may be replaced when dependencies are built.
