#include "sched/schedule.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace logpc {
namespace {

const Params kFig1{8, 6, 2, 4};  // L=6, o=2, g=4

TEST(Schedule, EmptyScheduleBasics) {
  const Schedule s(kFig1, 1);
  EXPECT_EQ(s.params(), kFig1);
  EXPECT_EQ(s.num_items(), 1);
  EXPECT_EQ(s.makespan(), 0);
  EXPECT_EQ(s.first_available(0, 0), kNever);
}

TEST(Schedule, InitialPlacementIsAvailability) {
  Schedule s(kFig1, 2);
  s.add_initial(0, 3, 5);
  EXPECT_EQ(s.first_available(3, 0), 5);
  EXPECT_EQ(s.first_available(3, 1), kNever);
  EXPECT_EQ(s.first_available(2, 0), kNever);
  EXPECT_EQ(s.makespan(), 5);
}

TEST(Schedule, StrictSendTiming) {
  Schedule s(kFig1, 1);
  s.add_initial(0, 0, 0);
  const Time avail = s.add_send(0, 0, 1, 0);
  // o + L + o = 2 + 6 + 2 = 10.
  EXPECT_EQ(avail, 10);
  EXPECT_EQ(s.recv_start(s.sends()[0]), 8);
  EXPECT_EQ(s.available_at(s.sends()[0]), 10);
  EXPECT_EQ(s.first_available(1, 0), 10);
  EXPECT_EQ(s.makespan(), 10);
}

TEST(Schedule, BufferedRecvOverride) {
  Schedule s(Params::postal(4, 3), 1);
  s.add_initial(0, 0, 0);
  SendOp op{0, 0, 1, 0, 7};  // arrival at 3, received at 7
  s.add_send(op);
  EXPECT_EQ(s.recv_start(s.sends()[0]), 7);
  EXPECT_EQ(s.available_at(s.sends()[0]), 7);  // o = 0
}

TEST(Schedule, FirstAvailableTakesEarliest) {
  Schedule s(Params::postal(4, 3), 1);
  s.add_initial(0, 0, 0);
  s.add_send(5, 0, 1, 0);  // available at 8
  s.add_send(0, 0, 1, 0);  // available at 3 (duplicate transmission)
  EXPECT_EQ(s.first_available(1, 0), 3);
}

TEST(Schedule, SortOrdersByStartTime) {
  Schedule s(Params::postal(4, 2), 2);
  s.add_initial(0, 0, 0);
  s.add_initial(1, 0, 0);
  s.add_send(3, 0, 1, 1);
  s.add_send(1, 0, 2, 0);
  s.add_send(2, 0, 3, 0);
  s.sort();
  EXPECT_EQ(s.sends()[0].start, 1);
  EXPECT_EQ(s.sends()[1].start, 2);
  EXPECT_EQ(s.sends()[2].start, 3);
}

TEST(Schedule, StreamOutputMentionsEverySend) {
  Schedule s(Params::postal(3, 2), 1);
  s.add_initial(0, 0, 0);
  s.add_send(0, 0, 1, 0);
  std::ostringstream os;
  os << s;
  EXPECT_NE(os.str().find("P0 -> P1"), std::string::npos);
  EXPECT_NE(os.str().find("init"), std::string::npos);
}

TEST(SendOp, Ordering) {
  const SendOp a{0, 0, 1, 0, kNever};
  const SendOp b{1, 0, 1, 0, kNever};
  EXPECT_LT(a, b);
  EXPECT_EQ(a, a);
}

}  // namespace
}  // namespace logpc
